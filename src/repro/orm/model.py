"""The Model base class: attributes, persistence, callbacks.

This is the ActiveRecord-style surface the paper builds on (§2): create
an object, set attributes, ``save()``; the mapper persists it and active
model callbacks fire before/after every operation.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Type

from repro.errors import ORMError, ReadOnlyAttributeError, RecordNotFound
from repro.orm.associations import BelongsTo, snake_case
from repro.orm.callbacks import collect_callbacks, run_callbacks
from repro.orm.fields import Field, VirtualField
from repro.orm.mapper import Mapper, mapper_for


def _default_now() -> float:
    from repro.clock import DEFAULT_CLOCK

    return DEFAULT_CLOCK.now()


def pluralize(word: str) -> str:
    if word.endswith("y") and word[-2:-1] not in "aeiou":
        return word[:-1] + "ies"
    if word.endswith(("s", "x", "z", "ch", "sh")):
        return word + "es"
    return word + "s"


class ModelMeta(type):
    """Collects fields, virtual fields, associations and callbacks."""

    def __new__(mcls, name: str, bases: tuple, namespace: dict) -> type:
        cls = super().__new__(mcls, name, bases, namespace)
        fields: Dict[str, Field] = {}
        virtuals: Dict[str, VirtualField] = {}
        for base in reversed(bases):
            fields.update(getattr(base, "_fields", {}))
            virtuals.update(getattr(base, "_virtual_fields", {}))
        # belongs_to associations implicitly declare their foreign key.
        for attr_name, value in list(namespace.items()):
            if isinstance(value, BelongsTo) and value.foreign_key not in namespace:
                fk_field = Field(int)
                fk_field.name = value.foreign_key
                setattr(cls, value.foreign_key, fk_field)
                fields[value.foreign_key] = fk_field
        for attr_name, value in namespace.items():
            if isinstance(value, Field):
                fields[attr_name] = value
            elif isinstance(value, VirtualField):
                virtuals[attr_name] = value
        cls._fields = fields
        cls._virtual_fields = virtuals
        cls._callbacks = collect_callbacks(namespace, bases)
        return cls


class Model(metaclass=ModelMeta):
    """Base class for application models.

    Subclasses declare :class:`Field`s and are bound to a database with
    :func:`bind_model` (or through a Synapse ``Service``).
    """

    id = Field(int)

    __mapper__: Optional[Mapper] = None
    #: name -> model class, shared within one service.
    _registry: Dict[str, type] = {}
    #: Attributes owned by another service; writes are rejected unless the
    #: Synapse subscriber is applying a remote update (§3.1).
    _readonly_fields: frozenset = frozenset()
    _guard_state = threading.local()

    def __init__(self, **attrs: Any) -> None:
        self._attributes: Dict[str, Any] = {}
        self._changed: set = set()
        self._new_record = True
        for name, field in self._fields.items():
            if name not in attrs:
                self._attributes[name] = field.default_value()
        for name, value in attrs.items():
            setattr(self, name, value)
        self._changed = set(attrs)

    # -- attribute plumbing -------------------------------------------------

    def _write_attribute(self, name: str, value: Any) -> None:
        if (
            name in self._readonly_fields
            and not getattr(self._guard_state, "suspended", False)
        ):
            raise ReadOnlyAttributeError(
                f"{type(self).__name__}.{name} is subscribed from another "
                "service and is read-only here"
            )
        self._attributes[name] = value
        self._changed.add(name)

    @classmethod
    def _suspend_readonly_guard(cls):
        """Context manager letting the Synapse subscriber write subscribed
        attributes while applying remote updates."""
        return _GuardSuspension(cls._guard_state)

    def __setattr__(self, name: str, value: Any) -> None:
        # Unknown public names would silently become plain instance
        # attributes and never persist; fail loudly instead.
        if (
            not name.startswith("_")
            and name not in self._fields
            and name not in self._virtual_fields
            and not hasattr(type(self), name)
        ):
            raise ORMError(f"{type(self).__name__} has no attribute {name!r}")
        super().__setattr__(name, value)

    # -- class-level metadata --------------------------------------------------

    @classmethod
    def table_name(cls) -> str:
        return pluralize(snake_case(cls.__name__))

    @classmethod
    def persisted_fields(cls) -> Dict[str, Field]:
        return dict(cls._fields)

    @classmethod
    def type_chain(cls) -> List[str]:
        """Class names from this model up to (excluding) Model — the
        inheritance tree marshalled for polymorphic subscribers (§4.1)."""
        chain = []
        for klass in cls.__mro__:
            if klass is Model:
                break
            if issubclass(klass, Model) and klass is not Model:
                chain.append(klass.__name__)
        return chain

    @classmethod
    def _mapper(cls) -> Mapper:
        if cls.__mapper__ is None:
            raise ORMError(f"model {cls.__name__} is not bound to a database")
        return cls.__mapper__

    # -- persistence -----------------------------------------------------------

    def to_attributes(self, names: Optional[List[str]] = None) -> Dict[str, Any]:
        """Persisted attribute values (optionally a subset)."""
        if names is None:
            names = list(self._fields)
        return {name: self._attributes.get(name) for name in names if name in self._fields}

    def save(self) -> "Model":
        """Persist the object (INSERT when new, UPDATE otherwise)."""
        self._touch_timestamps()
        run_callbacks(self, "before_save")
        if self._new_record:
            run_callbacks(self, "before_create")
            row = self._mapper().insert(self.to_attributes())
            self._load_row(row)
            self._new_record = False
            run_callbacks(self, "after_create")
        else:
            run_callbacks(self, "before_update")
            attrs = self.to_attributes()
            attrs.pop("id", None)
            row = self._mapper().update(self.id, attrs)
            self._load_row(row)
            run_callbacks(self, "after_update")
        run_callbacks(self, "after_save")
        self._changed.clear()
        return self

    def update(self, **attrs: Any) -> "Model":
        for name, value in attrs.items():
            setattr(self, name, value)
        return self.save()

    def destroy(self) -> "Model":
        if self._new_record or self.id is None:
            raise ORMError("cannot destroy an unsaved record")
        run_callbacks(self, "before_destroy")
        self._mapper().delete(self.id)
        run_callbacks(self, "after_destroy")
        return self

    def reload(self) -> "Model":
        row = self._mapper().find(self.id)
        if row is None:
            raise RecordNotFound(f"{type(self).__name__} id={self.id} is gone")
        self._load_row(row)
        self._changed.clear()
        return self

    def _load_row(self, row: Dict[str, Any]) -> None:
        for name in self._fields:
            if name in row:
                self._attributes[name] = row[name]

    def _touch_timestamps(self) -> None:
        """ActiveRecord-style automatic timestamps: models declaring
        ``created_at``/``updated_at`` fields get them maintained."""
        clock = getattr(getattr(type(self), "_service", None), "ecosystem", None)
        now = clock.clock.now() if clock is not None else _default_now()
        if "created_at" in self._fields and self._new_record \
                and self._attributes.get("created_at") is None:
            self._attributes["created_at"] = now
        if "updated_at" in self._fields:
            self._attributes["updated_at"] = now

    @property
    def new_record(self) -> bool:
        return self._new_record

    @property
    def changed(self) -> set:
        return set(self._changed)

    # -- class-level query API ----------------------------------------------------

    @classmethod
    def create(cls, **attrs: Any) -> "Model":
        instance = cls(**attrs)
        instance.save()
        return instance

    @classmethod
    def from_row(cls, row: Dict[str, Any]) -> "Model":
        """Instantiate from a storage row without firing callbacks."""
        instance = cls.__new__(cls)
        instance._attributes = {
            name: field.default_value() for name, field in cls._fields.items()
        }
        instance._changed = set()
        instance._new_record = False
        instance._load_row(row)
        return instance

    @classmethod
    def find(cls, row_id: Any) -> "Model":
        row = cls._mapper().find(row_id)
        if row is None:
            raise RecordNotFound(f"{cls.__name__} id={row_id} not found")
        return cls.from_row(row)

    @classmethod
    def find_by(cls, **conditions: Any) -> Optional["Model"]:
        rows = cls._mapper().where(conditions, limit=1)
        return cls.from_row(rows[0]) if rows else None

    @classmethod
    def find_or_initialize(cls, row_id: Any) -> "Model":
        """The subscriber's find-or-new step (§4.1)."""
        row = cls._mapper().find(row_id)
        if row is not None:
            return cls.from_row(row)
        instance = cls.__new__(cls)
        instance._attributes = {
            name: field.default_value() for name, field in cls._fields.items()
        }
        instance._attributes["id"] = row_id
        instance._changed = set()
        instance._new_record = True
        return instance

    @classmethod
    def where(cls, **conditions: Any) -> List["Model"]:
        limit = conditions.pop("_limit", None)
        order_by = conditions.pop("_order_by", None)
        rows = cls._mapper().where(conditions, limit=limit, order_by=order_by)
        return [cls.from_row(row) for row in rows]

    @classmethod
    def all(cls) -> List["Model"]:
        return cls.where()

    @classmethod
    def first(cls) -> Optional["Model"]:
        rows = cls._mapper().where({}, limit=1)
        return cls.from_row(rows[0]) if rows else None

    @classmethod
    def count(cls, **conditions: Any) -> int:
        return cls._mapper().count(conditions)

    @classmethod
    def update_all(cls, conditions: Optional[Dict[str, Any]] = None,
                   **values: Any) -> List["Model"]:
        """Multi-object UPDATE, unrolled into single-object updates so
        per-object callbacks and replication fire for each row (§4.2:
        "Synapse unrolls the multi-object update into single-object
        updates")."""
        updated = []
        for instance in cls.where(**(conditions or {})):
            instance.update(**values)
            updated.append(instance)
        return updated

    @classmethod
    def destroy_all(cls, **conditions: Any) -> int:
        """Multi-object DELETE, unrolled for the same reason."""
        count = 0
        for instance in cls.where(**conditions):
            instance.destroy()
            count += 1
        return count

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.id is not None
            and self.id == other.id  # type: ignore[union-attr]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.id))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.to_attributes()!r}>"


class _GuardSuspension:
    def __init__(self, state: threading.local) -> None:
        self._state = state

    def __enter__(self) -> None:
        self._previous = getattr(self._state, "suspended", False)
        self._state.suspended = True

    def __exit__(self, exc_type, exc, tb) -> None:
        self._state.suspended = self._previous


def bind_model(
    model_cls: Type[Model],
    db: Any,
    registry: Optional[Dict[str, type]] = None,
    mapper: Optional[Mapper] = None,
) -> Type[Model]:
    """Bind a model class to a database engine (standalone ORM use;
    Synapse services call this through ``Service.model``)."""
    chosen = mapper if mapper is not None else mapper_for(db)
    chosen.bind(model_cls)
    model_cls.__mapper__ = chosen
    if registry is not None:
        model_cls._registry = registry
        registry[model_cls.__name__] = model_cls
    else:
        # Give each standalone model its own registry containing itself.
        model_cls._registry = {model_cls.__name__: model_cls}
    return model_cls
