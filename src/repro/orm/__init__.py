"""MVC-style ORM layer (ActiveRecord/Mongoid/... stand-in).

The paper's replication mechanism lives at the ORM abstraction: models
expose create/read/update/delete plus *active model* callbacks, and each
engine family gets a mapper translating model attributes to its storage
layout. Synapse intercepts at the mapper <-> engine boundary.
"""

from repro.orm.callbacks import (
    after_create,
    after_destroy,
    after_save,
    after_update,
    before_create,
    before_destroy,
    before_save,
    before_update,
)
from repro.orm.fields import Field, VirtualField
from repro.orm.associations import BelongsTo, HasMany
from repro.orm.mapper import Mapper, ReadEvent, WriteEvent, mapper_for
from repro.orm.model import Model, bind_model

__all__ = [
    "Model",
    "Field",
    "VirtualField",
    "BelongsTo",
    "HasMany",
    "Mapper",
    "mapper_for",
    "bind_model",
    "WriteEvent",
    "ReadEvent",
    "before_create",
    "after_create",
    "before_update",
    "after_update",
    "before_destroy",
    "after_destroy",
    "before_save",
    "after_save",
]
