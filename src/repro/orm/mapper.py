"""Mapper base class and the engine-dispatch factory.

A mapper translates between a model's attribute dicts and one engine's
storage layout. All mappers expose the same CRUD surface — the "common
high-level object API" the paper leverages (§2) — and funnel every write
and read through an optional interceptor, which is where Synapse plugs in
(the *Synapse Query Intercept* module of Fig 6a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol, Type

from repro.errors import ORMError

Row = Dict[str, Any]


@dataclass
class WriteIntent:
    """A write about to be performed, handed to the interceptor *before*
    the engine executes it so locks can be taken (§4.2)."""

    kind: str  # "create" | "update" | "delete"
    model_cls: type
    row_id: Optional[Any]  # None for creates until the engine assigns one
    attrs: Row = field(default_factory=dict)


@dataclass
class WriteEvent:
    """A completed write: the final row as stored (including its id)."""

    kind: str
    model_cls: type
    row: Row


@dataclass
class ReadEvent:
    """Rows returned by a query — each is a read dependency (§4.2)."""

    model_cls: type
    rows: List[Row]


class Interceptor(Protocol):
    """What Synapse implements to interpose between ORM and engine."""

    def write(self, intent: WriteIntent, perform: Callable[[], Row]) -> Row:
        """Wrap the engine write; must call ``perform`` exactly once."""
        ...

    def read(self, event: ReadEvent) -> None:
        """Observe rows returned to the application."""
        ...


class Mapper:
    """Engine-agnostic CRUD core; subclasses supply the storage calls."""

    #: Engine families this mapper can drive.
    engine_families: tuple = ()

    def __init__(self, db: Any) -> None:
        self.db = db
        self.model_cls: Optional[Type] = None
        self.table: str = ""
        self.interceptor: Optional[Interceptor] = None
        # Optional mirrors into a shared MetricsRegistry (orm.<app>.*),
        # bound by the owning Service when the model is declared.
        self._metric_writes = None
        self._metric_reads = None

    # -- binding ----------------------------------------------------------

    def bind(self, model_cls: type) -> None:
        self.model_cls = model_cls
        self.table = model_cls.table_name()
        self.ensure_storage()

    def ensure_storage(self) -> None:
        """Create the table/collection/index backing the model."""

    # -- public CRUD (used by Model) ---------------------------------------

    def insert(self, attrs: Row) -> Row:
        intent = WriteIntent("create", self.model_cls, attrs.get("id"), dict(attrs))
        return self._dispatch(intent, lambda: self._do_insert(attrs))

    def update(self, row_id: Any, attrs: Row) -> Row:
        intent = WriteIntent("update", self.model_cls, row_id, dict(attrs))
        return self._dispatch(intent, lambda: self._do_update(row_id, attrs))

    def delete(self, row_id: Any) -> Row:
        intent = WriteIntent("delete", self.model_cls, row_id)
        return self._dispatch(intent, lambda: self._do_delete(row_id))

    def find(self, row_id: Any) -> Optional[Row]:
        row = self._do_find(row_id)
        if row is not None:
            self._emit_read([row])
        return row

    def where(
        self,
        conditions: Optional[Row] = None,
        limit: Optional[int] = None,
        order_by: Optional[tuple] = None,
    ) -> List[Row]:
        rows = self._do_where(conditions or {}, limit, order_by)
        self._emit_read(rows)
        return rows

    def count(self, conditions: Optional[Row] = None) -> int:
        # Aggregations are not read dependencies (§4.2).
        return self._do_count(conditions or {})

    # -- storage primitives (per engine) -------------------------------------

    def _do_insert(self, attrs: Row) -> Row:
        raise NotImplementedError

    def _do_update(self, row_id: Any, attrs: Row) -> Row:
        raise NotImplementedError

    def _do_delete(self, row_id: Any) -> Row:
        raise NotImplementedError

    def _do_find(self, row_id: Any) -> Optional[Row]:
        raise NotImplementedError

    def _do_where(
        self, conditions: Row, limit: Optional[int], order_by: Optional[tuple]
    ) -> List[Row]:
        raise NotImplementedError

    def _do_count(self, conditions: Row) -> int:
        raise NotImplementedError

    # -- interception plumbing ------------------------------------------------

    def bind_metrics(self, registry: Any, app: str) -> None:
        """Count ORM-level operations in a shared MetricsRegistry:
        ``orm.<app>.writes`` (dispatched write intents) and
        ``orm.<app>.reads`` (rows returned to the application)."""
        self._metric_writes = registry.counter(f"orm.{app}.writes")
        self._metric_reads = registry.counter(f"orm.{app}.reads")

    def _dispatch(self, intent: WriteIntent, perform: Callable[[], Row]) -> Row:
        if self._metric_writes is not None:
            self._metric_writes.increment()
        if self.interceptor is None:
            return perform()
        return self.interceptor.write(intent, perform)

    def _emit_read(self, rows: List[Row]) -> None:
        if self._metric_reads is not None and rows:
            self._metric_reads.increment(len(rows))
        if self.interceptor is not None and rows:
            self.interceptor.read(ReadEvent(self.model_cls, rows))


def mapper_for(db: Any) -> Mapper:
    """Pick the mapper matching the engine family of ``db``."""
    # Imported here to avoid import cycles at package load.
    from repro.orm.engine_mappers import (
        ColumnarMapper,
        DocumentMapper,
        GraphMapper,
        RelationalMapper,
        SearchMapper,
    )

    for mapper_cls in (
        RelationalMapper,
        DocumentMapper,
        ColumnarMapper,
        SearchMapper,
        GraphMapper,
    ):
        if db.engine_family in mapper_cls.engine_families:
            return mapper_cls(db)
    raise ORMError(f"no mapper for engine family {db.engine_family!r}")
