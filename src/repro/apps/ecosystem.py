"""Wiring of the full §5.2 open-source ecosystem (Fig 11).

Diaspora and Discourse publish posts; the semantic analyzer subscribes,
decorates users with topics of interest and publishes the decoration;
Spree subscribes users + interests and recommends products; the mailer
notifies friends of new Diaspora posts.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.analyzer import SemanticAnalyzerApp
from repro.apps.diaspora import DiasporaApp
from repro.apps.discourse import DiscourseApp
from repro.apps.mailer import MailerApp
from repro.apps.spree import SpreeApp
from repro.core import Ecosystem

DEFAULT_CATALOGUE = [
    ("Trail runners", "running shoes for mountain trails", 120.0),
    ("Espresso machine", "brews strong coffee every morning", 350.0),
    ("Cat tree", "a deluxe tower for cats to climb and nap", 90.0),
    ("Dog leash", "sturdy leash for walking dogs", 25.0),
    ("Guitar", "acoustic guitar for music lovers", 499.0),
    ("Yoga mat", "non-slip mat for yoga and stretching", 40.0),
]


class SocialEcosystem:
    """Handle bundling the five services for examples/benchmarks."""

    def __init__(self, ecosystem: Optional[Ecosystem] = None) -> None:
        self.eco = ecosystem or Ecosystem()
        self.diaspora = DiasporaApp(self.eco)
        self.discourse = DiscourseApp(self.eco)
        self.mailer = MailerApp(self.eco, social_app="diaspora")
        self.analyzer = SemanticAnalyzerApp(self.eco)
        self.spree = SpreeApp(self.eco)
        self.spree.seed_catalogue(DEFAULT_CATALOGUE)

    def sync(self) -> int:
        """Propagate every pending update through the whole graph."""
        return self.eco.drain_all()


def build_social_ecosystem(ecosystem: Optional[Ecosystem] = None) -> SocialEcosystem:
    return SocialEcosystem(ecosystem)
