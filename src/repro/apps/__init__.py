"""Miniature ports of the applications integrated in §5.2.

- :mod:`repro.apps.diaspora` — social network (posts, friendships, ACLs)
- :mod:`repro.apps.discourse` — discussion board (topics, forum posts)
- :mod:`repro.apps.analyzer` — semantic analyzer decorating users with
  topics of interest (Textalytics stand-in)
- :mod:`repro.apps.spree` — e-commerce with the social product recommender
- :mod:`repro.apps.mailer` — notification mailer (the Fig 2 / Fig 9 one)
- :mod:`repro.apps.ecosystem` — wires them all per Fig 11
"""

from repro.apps.ecosystem import SocialEcosystem, build_social_ecosystem

__all__ = ["SocialEcosystem", "build_social_ecosystem"]
