"""The notification mailer of Figs 2 and 9: emails a user's friends when
the user posts. Causal mode is essential — a notification must never
reference a friends list newer than the post it announces."""

from __future__ import annotations

from typing import Any, Dict, List

from repro.databases.document import MongoLike
from repro.orm import Field, Model, after_create


class MailerApp:
    """Subscribes users, friendships and posts from the social app;
    sends (collects) one email per friend per new post."""

    def __init__(self, ecosystem: Any, social_app: str = "diaspora",
                 name: str = "mailer") -> None:
        self.ecosystem = ecosystem
        self.service = ecosystem.service(name, database=MongoLike(f"{name}-db"))
        #: The "sent" mailbox: list of {to, about, body} dicts.
        self.outbox: List[Dict[str, Any]] = []
        service = self.service
        mailer = self

        @service.model(
            subscribe={"from": social_app, "fields": ["name", "email"]},
            name="User",
        )
        class MailerUser(Model):
            name = Field(str)
            email = Field(str)

        @service.model(
            subscribe={"from": social_app, "fields": ["user1_id", "user2_id"]},
            name="Friendship",
        )
        class MailerFriendship(Model):
            user1_id = Field(int)
            user2_id = Field(int)

        @service.model(
            subscribe={"from": social_app, "fields": ["author_id", "body"]},
            name="Post",
        )
        class MailerPost(Model):
            body = Field(str)
            author_id = Field(int)

            @after_create
            def notify_friends(self):
                if not type(self)._service.bootstrap_active:
                    mailer.send_notifications(self)

        self.User = MailerUser
        self.Friendship = MailerFriendship
        self.Post = MailerPost

    def friends_of(self, user_id: Any) -> List[int]:
        out = set()
        for f in self.Friendship.where(user1_id=user_id):
            out.add(f.user2_id)
        for f in self.Friendship.where(user2_id=user_id):
            out.add(f.user1_id)
        return sorted(out)

    def send_notifications(self, post: Any) -> None:
        author = self.User.find_by(id=post.author_id)
        author_name = author.name if author is not None else f"user {post.author_id}"
        for friend_id in self.friends_of(post.author_id):
            friend = self.User.find_by(id=friend_id)
            if friend is None or not friend.email:
                continue
            self.outbox.append(
                {
                    "to": friend.email,
                    "about": post.id,
                    "body": f"{author_name} posted: {post.body}",
                    "at": self.ecosystem.clock.now(),
                }
            )
