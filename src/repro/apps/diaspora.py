"""Mini-Diaspora: the Facebook-like social network of §5.2.

Publishes users, posts, friendships and access-control lists — the "23
lines of declarative configuration" the paper added to the real 30k-line
Diaspora. Runs on the PostgreSQL-like engine, matching Fig 11.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.databases.relational import PostgresLike
from repro.orm import BelongsTo, Field, Model


class DiasporaApp:
    """The publisher side of the social ecosystem."""

    def __init__(self, ecosystem: Any, name: str = "diaspora") -> None:
        self.ecosystem = ecosystem
        self.service = ecosystem.service(name, database=PostgresLike(f"{name}-db"))
        service = self.service

        @service.model(publish=["name", "email"])
        class User(Model):
            name = Field(str)
            email = Field(str)

        @service.model(publish=["author_id", "body", "public"])
        class Post(Model):
            body = Field(str)
            public = Field(bool, default=True)
            author = BelongsTo("User")

        @service.model(publish=["user1_id", "user2_id"])
        class Friendship(Model):
            user1 = BelongsTo("User")
            user2 = BelongsTo("User")

        @service.model(publish=["post_id", "user_id"])
        class AccessControlEntry(Model):
            """Grants ``user_id`` visibility of a non-public post."""

            post = BelongsTo("Post")
            user = BelongsTo("User")

        self.User = User
        self.Post = Post
        self.Friendship = Friendship
        self.AccessControlEntry = AccessControlEntry

    # -- controllers (the units of work measured in Fig 12b) ----------------

    def users_create(self, name: str, email: str) -> Any:
        with self.service.controller():
            return self.User.create(name=name, email=email)

    def posts_create(self, user: Any, body: str, public: bool = True,
                     visible_to: Optional[List[Any]] = None) -> Any:
        """posts/create: validates the author then writes the post (plus
        ACL entries for restricted posts) in the user's session."""
        with self.service.controller(user=user):
            author = self.User.find(user.id)
            post = self.Post.create(author_id=author.id, body=body, public=public)
            for friend in visible_to or []:
                self.AccessControlEntry.create(post_id=post.id, user_id=friend.id)
            return post

    def friends_create(self, user: Any, other: Any) -> Any:
        """friends/create: read both users, write the friendship."""
        with self.service.controller(user=user):
            u1 = self.User.find(user.id)
            u2 = self.User.find(other.id)
            return self.Friendship.create(user1_id=u1.id, user2_id=u2.id)

    def stream_index(self, user: Any, limit: int = 20) -> List[Any]:
        """stream/index: read-only feed assembly (near-zero overhead in
        Fig 12b)."""
        with self.service.controller(user=user):
            return self.Post.where(_order_by=("id", "desc"), _limit=limit)

    def friends_of(self, user: Any) -> List[int]:
        out = []
        for f in self.Friendship.where(user1_id=user.id):
            out.append(f.user2_id)
        for f in self.Friendship.where(user2_id=user.id):
            out.append(f.user1_id)
        return sorted(set(out))
