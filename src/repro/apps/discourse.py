"""Mini-Discourse: the discussion board of §5.2 (5 configuration lines in
the real 21k-line app). Publishes topics and forum posts."""

from __future__ import annotations

from typing import Any, List

from repro.databases.relational import PostgresLike
from repro.orm import BelongsTo, Field, Model


class DiscourseApp:
    def __init__(self, ecosystem: Any, name: str = "discourse") -> None:
        self.ecosystem = ecosystem
        self.service = ecosystem.service(name, database=PostgresLike(f"{name}-db"))
        service = self.service

        @service.model(publish=["title", "author_id"])
        class Topic(Model):
            title = Field(str)
            author_id = Field(int)

        @service.model(publish=["topic_id", "author_id", "body"], name="ForumPost")
        class ForumPost(Model):
            body = Field(str)
            topic = BelongsTo("Topic")
            author_id = Field(int)

        self.Topic = Topic
        self.ForumPost = ForumPost

    # -- controllers ---------------------------------------------------------

    def topics_index(self, limit: int = 20) -> List[Any]:
        with self.service.controller():
            return self.Topic.where(_order_by=("id", "desc"), _limit=limit)

    def topics_create(self, author_id: int, title: str) -> Any:
        with self.service.controller():
            return self.Topic.create(title=title, author_id=author_id)

    def posts_create(self, author_id: int, topic: Any, body: str) -> Any:
        with self.service.controller():
            seen = self.Topic.find(topic.id)
            return self.ForumPost.create(
                topic_id=seen.id, author_id=author_id, body=body
            )
