"""Mini-Spree: the e-commerce application of §5.2 (7 configuration lines
in the real 37k-line app) plus the generic targeted-search feature the
paper added.

Subscribes to the semantic analyzer's decorated User model; the
recommender is the paper's "very simple keyword-based matching between
the users' interests and product descriptions".
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.databases.relational import MySQLLike
from repro.orm import BelongsTo, Field, Model


class SpreeApp:
    def __init__(
        self,
        ecosystem: Any,
        diaspora_app: str = "diaspora",
        analyzer_app: str = "analyzer",
        name: str = "spree",
    ) -> None:
        self.ecosystem = ecosystem
        self.service = ecosystem.service(name, database=MySQLLike(f"{name}-db"))
        service = self.service

        @service.model(
            subscribe=[
                {"from": diaspora_app, "fields": ["name"]},
                {"from": analyzer_app, "fields": ["interests"]},
            ],
            name="User",
        )
        class SpreeUser(Model):
            name = Field(str)
            interests = Field(list, default=list)

        @service.model(publish=["name", "description", "price"])
        class Product(Model):
            name = Field(str)
            description = Field(str)
            price = Field(float)

        @service.model(publish=["user_id", "total"])
        class Order(Model):
            user = BelongsTo("User")
            total = Field(float, default=0.0)

        @service.model()
        class LineItem(Model):
            order = BelongsTo("Order")
            product = BelongsTo("Product")
            quantity = Field(int, default=1)

        self.User = SpreeUser
        self.Product = Product
        self.Order = Order
        self.LineItem = LineItem

    # -- catalogue -----------------------------------------------------------

    def seed_catalogue(self, products: List[Tuple[str, str, float]]) -> None:
        with self.service.controller():
            for name, description, price in products:
                self.Product.create(name=name, description=description,
                                    price=price)

    # -- controllers -----------------------------------------------------------

    def products_index(self) -> List[Any]:
        with self.service.controller():
            return self.Product.all()

    def orders_create(self, user: Any, items: List[Tuple[Any, int]]) -> Any:
        """Checkout: one order + line items + computed total."""
        with self.service.controller(user=user):
            order = self.Order.create(user_id=user.id)
            total = 0.0
            for product, quantity in items:
                self.LineItem.create(order_id=order.id, product_id=product.id,
                                     quantity=quantity)
                total += product.price * quantity
            order.update(total=total)
            return order

    # -- the social recommender (Fig 11's purpose) -----------------------------

    def recommend(self, user_id: Any, limit: int = 5) -> List[Any]:
        """Products whose descriptions mention the user's interests —
        interests that materialised via Diaspora -> analyzer -> Spree
        without this code knowing where they came from."""
        user = self.User.find_by(id=user_id)
        if user is None or not user.interests:
            return []
        interests = {i.lower() for i in user.interests}
        scored = []
        for product in self.Product.all():
            text = f"{product.name} {product.description}".lower()
            score = sum(1 for interest in interests if interest in text)
            if score > 0:
                scored.append((score, product.id, product))
        scored.sort(key=lambda entry: (-entry[0], entry[1]))
        return [product for _score, _pid, product in scored[:limit]]
