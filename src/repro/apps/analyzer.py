"""The semantic analyzer of §5.2: subscribes to posts, extracts topics of
interest, and decorates the User model with them.

The paper used the Textalytics web service; the stand-in here is a
deterministic keyword extractor (token frequency over a stopword-filtered
standard analysis — the same pipeline our search engine uses), which
preserves the data-flow shape: post text in, interest tags out.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, List

from repro.databases.relational import MySQLLike
from repro.databases.search.analysis import standard_analyzer
from repro.orm import Field, Model, after_create


def extract_topics(text: str, limit: int = 3, min_length: int = 4) -> List[str]:
    """Textalytics stand-in: the most frequent long-enough tokens."""
    tokens = [t for t in standard_analyzer(text) if len(t) >= min_length]
    return [token for token, _count in Counter(tokens).most_common(limit)]


class SemanticAnalyzerApp:
    """Decorator service: subscribes Diaspora/Discourse posts, publishes
    User interests (the Dec2 pattern of Fig 3, deployed as in Fig 11)."""

    def __init__(
        self,
        ecosystem: Any,
        diaspora_app: str = "diaspora",
        discourse_app: str = "discourse",
        name: str = "analyzer",
    ) -> None:
        self.ecosystem = ecosystem
        self.service = ecosystem.service(name, database=MySQLLike(f"{name}-db"))
        service = self.service
        analyzer = self

        @service.model(
            subscribe={"from": diaspora_app, "fields": ["name"]},
            publish=["interests"],
            name="User",
        )
        class AnalyzedUser(Model):
            name = Field(str)
            interests = Field(list, default=list)

        @service.model(
            subscribe={"from": diaspora_app,
                       "fields": ["author_id", "body", "public"]},
            name="Post",
        )
        class AnalyzedPost(Model):
            body = Field(str)
            author_id = Field(int)
            public = Field(bool)

            @after_create
            def analyze(self):
                analyzer.on_new_text(self.author_id, self.body)

        @service.model(
            subscribe={"from": discourse_app,
                       "fields": ["topic_id", "author_id", "body"]},
            name="ForumPost",
        )
        class AnalyzedForumPost(Model):
            body = Field(str)
            topic_id = Field(int)
            author_id = Field(int)

            @after_create
            def analyze(self):
                analyzer.on_new_text(self.author_id, self.body)

        self.User = AnalyzedUser
        self.Post = AnalyzedPost
        self.ForumPost = AnalyzedForumPost
        self.analyzed_texts = 0

    def on_new_text(self, author_id: Any, body: str) -> None:
        """Merge newly-extracted topics into the author's decoration and
        republish it (running inside a background-job scope so the update
        chains causally after the triggering message)."""
        if author_id is None:
            return
        self.analyzed_texts += 1
        topics = extract_topics(body or "")
        if not topics:
            return
        with self.service.background_job():
            user = self.User.find_or_initialize(author_id)
            if user.new_record:
                return  # user data has not arrived yet; topics lost is OK
            merged = list(dict.fromkeys((user.interests or []) + topics))
            user.interests = merged
            user.save()
