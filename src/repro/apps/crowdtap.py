"""The Crowdtap production ecosystem of §5.1 (Fig 10).

The main app (MongoDB) is surrounded by eight microservices. All
publishers support causal delivery; each subscriber picks causal or weak
to match its semantics/availability needs, exactly as Fig 10's arrows:

- causal: Moderation, Targeting, Mailer, Spree, FB Crawler -> Targeting
- weak:   Analytics, Search Engine, Reporting
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.databases.search import ElasticsearchLike, Match
from repro.orm import BelongsTo, Field, Model, after_create, after_update


class CrowdtapEcosystem:
    """Builds the nine services and exposes app-level operations."""

    def __init__(self, ecosystem: Optional[Ecosystem] = None) -> None:
        self.eco = ecosystem or Ecosystem()
        self._build_main_app()
        self._build_fb_crawler()
        self._build_moderation()
        self._build_targeting()
        self._build_mailer()
        self._build_analytics()
        self._build_search()
        self._build_reporting()
        self._build_spree()

    def sync(self) -> int:
        return self.eco.drain_all()

    # ------------------------------------------------------------------
    # Main app (MongoDB, causal publisher)
    # ------------------------------------------------------------------

    def _build_main_app(self) -> None:
        service = self.eco.service("main", database=MongoLike("main-db"))
        self.main = service

        @service.model(publish=["name", "email", "points"])
        class Member(Model):
            name = Field(str)
            email = Field(str)
            points = Field(int, default=0)

        @service.model(publish=["name", "description"])
        class Brand(Model):
            name = Field(str)
            description = Field(str)

        @service.model(publish=["member_id", "brand_id", "kind", "text"])
        class Action(Model):
            kind = Field(str)
            text = Field(str)
            member = BelongsTo("Member")
            brand = BelongsTo("Brand")

        self.Member, self.Brand, self.Action = Member, Brand, Action

    # -- main-app operations -------------------------------------------------

    def signup(self, name: str, email: str) -> Any:
        with self.main.controller():
            return self.Member.create(name=name, email=email)

    def add_brand(self, name: str, description: str) -> Any:
        with self.main.controller():
            return self.Brand.create(name=name, description=description)

    def submit_action(self, member: Any, brand: Any, kind: str, text: str = "") -> Any:
        with self.main.controller(user=member):
            fresh = self.Member.find(member.id)
            action = self.Action.create(
                member_id=fresh.id, brand_id=brand.id, kind=kind, text=text
            )
            fresh.update(points=(fresh.points or 0) + 5)
            return action

    # ------------------------------------------------------------------
    # FB crawler (MongoDB, publishes crawled social profiles)
    # ------------------------------------------------------------------

    def _build_fb_crawler(self) -> None:
        service = self.eco.service("fb-crawler", database=MongoLike("fb-db"))
        self.fb_crawler = service

        @service.model(publish=["member_id", "likes"])
        class SocialProfile(Model):
            member_id = Field(int)
            likes = Field(list, default=list)

        self.SocialProfile = SocialProfile

    def crawl_profile(self, member: Any, likes: List[str]) -> Any:
        with self.fb_crawler.controller():
            return self.SocialProfile.create(member_id=member.id, likes=likes)

    # ------------------------------------------------------------------
    # Moderation (MongoDB, causal) — decorates actions with a status
    # ------------------------------------------------------------------

    def _build_moderation(self) -> None:
        service = self.eco.service("moderation", database=MongoLike("mod-db"))
        self.moderation = service
        banned = {"spam", "scam"}

        @service.model(
            subscribe={"from": "main",
                       "fields": ["member_id", "brand_id", "kind", "text"],
                       "mode": "causal"},
            publish=["status"],
            name="Action",
        )
        class ModeratedAction(Model):
            kind = Field(str)
            text = Field(str)
            member_id = Field(int)
            brand_id = Field(int)
            status = Field(str, default="pending")

            @after_create
            def moderate(self):
                words = set((self.text or "").lower().split())
                verdict = "rejected" if words & banned else "approved"
                with service.background_job():
                    mine = type(self).find(self.id)
                    mine.status = verdict
                    mine.save()

        self.ModeratedAction = ModeratedAction

    # ------------------------------------------------------------------
    # Targeting (MongoDB, causal) — segments from main + crawler data
    # ------------------------------------------------------------------

    def _build_targeting(self) -> None:
        service = self.eco.service("targeting", database=MongoLike("tgt-db"))
        self.targeting = service

        @service.model(
            subscribe={"from": "main", "fields": ["name", "points"],
                       "mode": "causal"},
            publish=["segments"],
            name="Member",
        )
        class TargetedMember(Model):
            name = Field(str)
            points = Field(int)
            segments = Field(list, default=list)

        @service.model(
            subscribe={"from": "fb-crawler", "fields": ["member_id", "likes"],
                       "mode": "causal"},
            name="SocialProfile",
        )
        class CrawledProfile(Model):
            member_id = Field(int)
            likes = Field(list, default=list)

            @after_create
            def segment(self):
                with service.background_job():
                    member = TargetedMember.find_or_initialize(self.member_id)
                    if member.new_record:
                        return
                    segments = set(member.segments or [])
                    for like in self.likes or []:
                        segments.add(f"likes:{like}")
                    member.segments = sorted(segments)
                    member.save()

        self.TargetedMember = TargetedMember

    # ------------------------------------------------------------------
    # Mailer (MongoDB, causal)
    # ------------------------------------------------------------------

    def _build_mailer(self) -> None:
        service = self.eco.service("ct-mailer", database=MongoLike("ctmail-db"))
        self.mailer = service
        self.outbox: List[Dict[str, Any]] = []
        outbox = self.outbox

        @service.model(
            subscribe={"from": "main", "fields": ["name", "email"],
                       "mode": "causal"},
            name="Member",
        )
        class MailMember(Model):
            name = Field(str)
            email = Field(str)

            @after_create
            def welcome(self):
                if not type(self)._service.bootstrap_active:
                    outbox.append({"to": self.email, "subject": "welcome"})

        @service.model(
            subscribe={"from": "moderation", "fields": ["status"],
                       "mode": "causal"},
            name="Action",
        )
        class MailAction(Model):
            status = Field(str)

            # The first moderation update may be this service's first
            # sighting of the action (a local create): hook both events.
            @after_create
            @after_update
            def notify_rejection(self):
                if self.status == "rejected":
                    outbox.append({"to": "moderators@crowdtap",
                                   "subject": f"action {self.id} rejected"})

        self.MailMember = MailMember

    # ------------------------------------------------------------------
    # Analytics (Elasticsearch, weak)
    # ------------------------------------------------------------------

    def _build_analytics(self) -> None:
        service = self.eco.service("analytics",
                                   database=ElasticsearchLike("an-db"))
        self.analytics = service

        @service.model(
            subscribe={"from": "main",
                       "fields": ["member_id", "brand_id", "kind"],
                       "mode": "weak"},
            name="Action",
        )
        class AnalyzedAction(Model):
            member_id = Field(int)
            brand_id = Field(int)
            kind = Field(str)

        self.AnalyzedAction = AnalyzedAction

    def actions_per_kind(self) -> Dict[str, int]:
        buckets = self.analytics.database.aggregate("actions", "terms", "kind")
        return {b["key"]: b["doc_count"] for b in buckets}

    # ------------------------------------------------------------------
    # Search engine (Elasticsearch, weak)
    # ------------------------------------------------------------------

    def _build_search(self) -> None:
        service = self.eco.service("search", database=ElasticsearchLike("se-db"))
        self.search = service

        @service.model(
            subscribe={"from": "main", "fields": ["name", "description"],
                       "mode": "weak"},
            name="Brand",
        )
        class SearchableBrand(Model):
            __analyzers__ = {"description": "standard"}
            name = Field(str)
            description = Field(str)

        self.SearchableBrand = SearchableBrand

    def search_brands(self, text: str) -> List[str]:
        hits = self.search.database.search("brands", Match("description", text))
        return [doc["name"] for doc, _score in hits]

    # ------------------------------------------------------------------
    # Reporting (MongoDB, weak)
    # ------------------------------------------------------------------

    def _build_reporting(self) -> None:
        service = self.eco.service("reporting", database=MongoLike("rep-db"))
        self.reporting = service

        @service.model(
            subscribe={"from": "main", "fields": ["member_id", "kind"],
                       "mode": "weak"},
            name="Action",
        )
        class ReportedAction(Model):
            member_id = Field(int)
            kind = Field(str)

        self.ReportedAction = ReportedAction

    def engagement_report(self) -> Dict[str, int]:
        """Aggregated with the document engine's pipeline — the reporting
        prototype the Crowdtap hackathon story describes (§6.5)."""
        buckets = self.reporting.database.aggregate(
            "actions",
            [
                {"$group": {"_id": "$kind", "count": {"$sum": 1}}},
                {"$sort": {"count": -1}},
            ],
        )
        return {bucket["_id"]: bucket["count"] for bucket in buckets}

    def top_members_by_actions(self, limit: int = 3) -> List[Dict[str, Any]]:
        return self.reporting.database.aggregate(
            "actions",
            [
                {"$group": {"_id": "$member_id", "actions": {"$sum": 1}}},
                {"$sort": {"actions": -1, "_id": 1}},
                {"$limit": limit},
            ],
        )

    # ------------------------------------------------------------------
    # Spree (PostgreSQL, causal)
    # ------------------------------------------------------------------

    def _build_spree(self) -> None:
        service = self.eco.service("ct-spree", database=PostgresLike("ctsp-db"))
        self.spree = service

        @service.model(
            subscribe=[
                {"from": "main", "fields": ["name", "email"], "mode": "causal"},
                {"from": "targeting", "fields": ["segments"], "mode": "causal"},
            ],
            name="Member",
        )
        class SpreeMember(Model):
            name = Field(str)
            email = Field(str)
            segments = Field(list, default=list)

        self.SpreeMember = SpreeMember

    def members_in_segment(self, segment: str) -> List[str]:
        return sorted(
            m.name for m in self.SpreeMember.all()
            if segment in (m.segments or [])
        )


def build_crowdtap_ecosystem(ecosystem: Optional[Ecosystem] = None) -> CrowdtapEcosystem:
    return CrowdtapEcosystem(ecosystem)
