"""The anomaly flight recorder: bounded rings of traces and events.

The §6.5 postmortem was reconstructed by humans, late, from whatever
logs happened to survive. The :class:`FlightRecorder` keeps the recent
past on hand continuously — the last N completed traces (fed by the
``Tracer`` sink) and the last M structured events (deadlocks, queue
decommissions, injected/observed drops, repairs, SLO breaches,
conformance violations) — and, the moment an *anomaly* event lands,
dumps everything to a JSONL artifact so the evidence is frozen before
the rings rotate it away.

Dump format (one JSON object per line)::

    {"type": "meta", "reason": ..., "at": ..., "events": N, "traces": M}
    {"type": "event", "kind": ..., "severity": ..., "at": ..., ...}
    {"type": "trace", "trace_id": ..., "app": ..., "spans": [...], ...}
    {"type": "exemplar", "metric": ..., "value": ..., "trace_id": ...}

Exemplar lines come from the ecosystem metrics registry when one is
bound, so a dump links bad percentiles to the exact traces it carries.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.clock import Clock, DEFAULT_CLOCK
from repro.runtime.tracing import Trace

SEVERITY_INFO = "info"
SEVERITY_ANOMALY = "anomaly"

#: Default floor between two automatic dumps: a chaos run dropping
#: hundreds of messages produces one artifact per window, not per drop.
DUMP_MIN_INTERVAL = 5.0


@dataclass
class RecorderEvent:
    """One structured event in the ring."""

    kind: str
    severity: str
    at: float
    seq: int
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "type": "event",
            "kind": self.kind,
            "severity": self.severity,
            "at": self.at,
            "seq": self.seq,
        }
        out.update(self.data)
        return out


class FlightRecorder:
    """Bounded rings of completed traces and structured events.

    ``dump_dir=None`` (the default) keeps the recorder purely in-memory:
    anomalies are still ring-buffered and queryable, nothing touches the
    filesystem. Point ``dump_dir`` somewhere to arm automatic dumps.
    """

    def __init__(
        self,
        trace_capacity: int = 256,
        event_capacity: int = 512,
        dump_dir: Optional[str] = None,
        clock: Optional[Clock] = None,
        dump_min_interval: float = DUMP_MIN_INTERVAL,
    ) -> None:
        self.clock = clock or DEFAULT_CLOCK
        self.dump_dir = dump_dir
        self.dump_min_interval = dump_min_interval
        #: Bound by the ecosystem so dumps carry exemplars.
        self.registry: Optional[Any] = None
        self._traces: "deque[Trace]" = deque(maxlen=trace_capacity)
        self._events: "deque[RecorderEvent]" = deque(maxlen=event_capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._dump_seq = 0
        self._last_dump: Optional[float] = None
        #: Paths of every artifact written, oldest first.
        self.dumps: List[str] = []
        #: Correlated-postmortem hook: called with the anomaly reason
        #: after an automatic dump fires (rate-limited identically). The
        #: cluster plane points it at ``broadcast_incident`` so every
        #: peer shard freezes its matching window too.
        self.incident_sink: Optional[Any] = None

    # -- recording ----------------------------------------------------------

    def record_trace(self, trace: Trace) -> None:
        with self._lock:
            self._traces.append(trace)

    def record_event(
        self, kind: str, severity: str = SEVERITY_INFO, **data: Any
    ) -> RecorderEvent:
        """Ring-buffer one event; an anomaly triggers a dump (when armed)."""
        with self._lock:
            self._seq += 1
            event = RecorderEvent(
                kind=kind,
                severity=severity,
                at=self.clock.now(),
                seq=self._seq,
                data=data,
            )
            self._events.append(event)
        if severity == SEVERITY_ANOMALY:
            self._maybe_auto_dump(reason=kind)
        return event

    def anomaly(self, kind: str, **data: Any) -> RecorderEvent:
        return self.record_event(kind, severity=SEVERITY_ANOMALY, **data)

    # -- reading ------------------------------------------------------------

    def traces(self) -> List[Trace]:
        """Completed traces, oldest first (ring eviction drops oldest)."""
        with self._lock:
            return list(self._traces)

    def events(self, kind: Optional[str] = None) -> List[RecorderEvent]:
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [e for e in events if e.kind == kind]
        return events

    def anomalies(self) -> List[RecorderEvent]:
        return [e for e in self.events() if e.severity == SEVERITY_ANOMALY]

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()
            self._events.clear()

    # -- dumping ------------------------------------------------------------

    def _maybe_auto_dump(self, reason: str) -> Optional[str]:
        if self.dump_dir is None and self.incident_sink is None:
            return None
        now = self.clock.monotonic()
        with self._lock:
            if (
                self._last_dump is not None
                and now - self._last_dump < self.dump_min_interval
            ):
                return None
            self._last_dump = now
        path = self.dump(reason=reason) if self.dump_dir is not None else None
        if self.incident_sink is not None:
            try:
                self.incident_sink(reason)
            except Exception:  # a broadcast failure must not lose the dump
                pass
        return path

    def _render_lines(self, reason: str) -> List[str]:
        """The JSONL body of one dump: frozen rings + registry exemplars."""
        with self._lock:
            traces = list(self._traces)
            events = list(self._events)
        exemplars = (
            self.registry.exemplars() if self.registry is not None else {}
        )
        lines = [
            json.dumps(
                {
                    "type": "meta",
                    "reason": reason,
                    "at": self.clock.now(),
                    "events": len(events),
                    "traces": len(traces),
                }
            )
        ]
        lines.extend(json.dumps(event.to_dict()) for event in events)
        for trace in traces:
            payload = trace.to_dict()
            payload["type"] = "trace"
            lines.append(json.dumps(payload))
        for metric, metric_exemplars in exemplars.items():
            for exemplar in metric_exemplars:
                lines.append(
                    json.dumps({"type": "exemplar", "metric": metric, **exemplar})
                )
        return lines

    def dump(self, reason: str = "manual") -> Optional[str]:
        """Freeze the rings (plus registry exemplars) to one JSONL file;
        returns the path, or None when no ``dump_dir`` is configured."""
        if self.dump_dir is None:
            return None
        with self._lock:
            self._dump_seq += 1
            seq = self._dump_seq
        safe_reason = "".join(
            ch if ch.isalnum() or ch in "-_." else "_" for ch in reason
        )
        os.makedirs(self.dump_dir, exist_ok=True)
        path = os.path.join(self.dump_dir, f"flight-{seq:04d}-{safe_reason}.jsonl")
        return self.dump_to(path, reason=reason)

    def dump_to(self, path: str, reason: str = "manual") -> str:
        """Freeze the rings to an explicit path (correlated postmortems
        write every shard's window into one incident directory)."""
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        lines = self._render_lines(reason)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        self.dumps.append(path)
        return path


def load_dump(path: str) -> List[Dict[str, Any]]:
    """Parse one JSONL artifact back into dicts (postmortem tooling)."""
    out: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
