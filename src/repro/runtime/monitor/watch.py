"""``python -m repro watch`` — live replication-health console.

Drives a small two-service workload (sampled tracing on, a tight demo
SLO armed) and renders per-link lag, throughput and SLO status once per
interval. ``--once`` runs a single round and exits — the CI smoke mode.

``--cluster`` switches to the federated view: the 2-shard demo runs in
worker OS processes and every round pulls ``health_report`` +
``metrics_dump`` through the control plane, rendering one merged
console (or Prometheus/JSON exposition) in which every series carries
its ``shard`` label.

Flags:
    --once            one round, then exit
    --rounds N        stop after N rounds (0 = until interrupted)
    --interval S      seconds between rounds (default 1.0)
    --writes N        publisher writes per round (default 20)
    --prometheus      also print the Prometheus exposition each round
    --json            print the JSON exposition instead of the console view
    --cluster         federate the 2-shard demo instead of one process
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Tuple

from repro.runtime.monitor.export import to_json, to_prometheus
from repro.runtime.monitor.lag import LinkSLO


def _build_demo_ecosystem() -> Tuple[Any, Any, Any, type]:
    from repro.core import Ecosystem
    from repro.databases.document import MongoLike
    from repro.databases.relational import PostgresLike
    from repro.orm import Field, Model

    from repro.runtime.flow import FlowConfig

    import tempfile

    eco = Ecosystem()
    # Production posture: always-on tracing, every message sampled (the
    # demo workload is tiny), exemplars armed by the SLO below. Flow
    # control is on with an explicit capacity so the ``flow.*`` gauges
    # and counters are live in every exposition round, and durability
    # WALs into a throwaway dir so the ``durability.*`` row is live too.
    eco.enable_tracing(sample_rate=1.0)
    eco.enable_flow(FlowConfig(capacity=256))
    eco.enable_durability(
        data_dir=tempfile.mkdtemp(prefix="repro-watch-"), snapshot_every=256
    )
    eco.monitor.set_slo("pub", "sub", LinkSLO(p99_lag=0.5, stall_after=5.0))
    pub = eco.service("pub", database=MongoLike("pub-db"))

    @pub.model(publish=["name", "score"], name="Item")
    class Item(Model):
        name = Field(str)
        score = Field(int, default=0)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(subscribe={"from": "pub", "fields": ["name", "score"]}, name="Item")
    class SubItem(Model):
        name = Field(str)
        score = Field(int, default=0)

    # Read path on: the views/cache row below then shows live counters.
    from repro.views import CountView, SumView

    views = sub.enable_views()
    views.declare(CountView("item_count", "Item"))
    views.declare(SumView("score_total", "Item", "score"))

    # CDC front-end on: a slice of each round's writes bypasses the ORM
    # through the transactional outbox, so the cdc row is live too.
    pub.enable_outbox()

    return eco, pub, sub, Item


def _flag_value(args: List[str], name: str, default: float) -> float:
    if name in args:
        return float(args[args.index(name) + 1])
    return default


def _render_round(eco: Any, round_no: int) -> List[str]:
    report = eco.monitor.health()
    snapshot = eco.metrics.snapshot()
    lines = [f"== replication health · round {round_no} =="]
    for link in report.links:
        lines.append("  " + link.summary_line())
    applied = sum(
        value
        for name, value in snapshot.items()
        if name.startswith("subscriber.") and name.endswith(".processed")
        and isinstance(value, int)
    )
    lines.append(
        "  throughput: "
        f"routed={eco.metrics.value('broker.routed')} "
        f"dropped={eco.metrics.value('broker.dropped')} "
        f"applied={applied}"
    )
    def _flow_sum(suffix: str) -> int:
        return sum(
            int(value)
            for name, value in snapshot.items()
            if name.startswith("flow.") and name.endswith(suffix)
            and isinstance(value, (int, float))
        )

    batch_counts = sum(
        value["count"]
        for name, value in snapshot.items()
        if name.startswith("flow.") and name.endswith(".batch_size")
        and isinstance(value, dict)
    )
    lines.append(
        "  flow: "
        f"credits={_flow_sum('.credits')} "
        f"shed={_flow_sum('.shed')} "
        f"coalesced={_flow_sum('.coalesced')} "
        f"batches={int(batch_counts)}"
    )
    def _durability(suffix: str) -> int:
        value = snapshot.get(f"durability.{suffix}", 0)
        return int(value) if isinstance(value, (int, float)) else 0

    lines.append(
        "  durability: "
        f"appends={_durability('wal.appends')} "
        f"fsyncs={_durability('wal.fsyncs')} "
        f"segments={_durability('wal.segments')} "
        f"bytes={_durability('wal.bytes')} "
        f"snapshots={_durability('snapshot.count')}"
    )
    def _prefixed_sum(prefix: str, suffix: str) -> int:
        return sum(
            int(value)
            for name, value in snapshot.items()
            if name.startswith(prefix) and name.endswith(suffix)
            and isinstance(value, (int, float))
        )

    lines.append(
        "  views: "
        f"applied={_prefixed_sum('views.', '.applied')} "
        f"folds={_prefixed_sum('views.', '.folds')} "
        f"rebuilds={_prefixed_sum('views.', '.rebuilds')}"
    )
    lines.append(
        "  cache: "
        f"hits={_prefixed_sum('cache.', '.hits')} "
        f"misses={_prefixed_sum('cache.', '.misses')} "
        f"invalidations={_prefixed_sum('cache.', '.invalidations')} "
        f"write_through={_prefixed_sum('cache.', '.write_throughs')}"
    )
    cdc = getattr(eco, "cdc", None)
    lines.append(
        "  cdc: "
        f"appended={_prefixed_sum('cdc.', '.appended')} "
        f"published={_prefixed_sum('cdc.', '.published')} "
        f"outbox_lag={cdc.backlog() if cdc is not None else 0}"
    )
    anomalies = eco.recorder.anomalies()
    lines.append(
        f"  flight recorder: {len(eco.recorder.traces())} traces, "
        f"{len(eco.recorder.events())} events, {len(anomalies)} anomalies"
    )
    return lines


def _render_cluster_round(
    round_no: int, health: Dict[str, Any], metrics: Dict[str, Any]
) -> List[str]:
    lines = [f"== cluster health · round {round_no} =="]
    for shard in sorted(health["shards"]):
        state = health["shards"][shard]
        lines.append(
            f"  [{shard}] idle={bool(state['idle'])} "
            f"backlog={state['backlog']} in_flight={state['in_flight']} "
            f"forwarded={state['sent']} delivered={state['received']}"
        )
        for link in (state.get("health") or {}).get("links", []):
            lines.append(
                f"  [{shard}] {link['publisher']} -> {link['subscriber']}: "
                f"{link['status']} "
                f"(p50={link['p50'] * 1000:.1f}ms "
                f"p99={link['p99'] * 1000:.1f}ms "
                f"samples={link['samples']})"
            )
    for shard in sorted(metrics["shards"]):
        snapshot = metrics["shards"][shard]["metrics"]
        applied = sum(
            value for name, value in snapshot.items()
            if name.startswith("subscriber.") and name.endswith(".processed")
            and isinstance(value, int)
        )
        lines.append(
            f"  [{shard}] throughput: "
            f"routed={snapshot.get('broker.routed', 0)} "
            f"dropped={snapshot.get('broker.dropped', 0)} "
            f"applied={applied}"
        )
    for shard in sorted(set(health["missing"]) | set(metrics["missing"])):
        lines.append(f"  [{shard}] UNREACHABLE (no report this round)")
    return lines


def _cluster_watch(
    rounds: int, interval: float, writes: int,
    as_json: bool, with_prometheus: bool,
) -> int:
    """Drive the 2-shard demo and render the federated view each round.

    The parent never touches a shard's registry directly: every number
    printed here crossed the control plane as a ``health_report`` /
    ``metrics_dump`` federation op, shard label attached at the source.
    """
    import os

    from repro.runtime.transport.demo import (
        DEMO_PLACEMENT,
        OPS_ENV,
        TRACE_ENV,
        build_demo_ecosystem,
        demo_scenario,
    )
    from repro.runtime.transport.shard import ShardRunner

    os.environ[OPS_ENV] = str(writes)
    os.environ[TRACE_ENV] = "1.0"
    runner = ShardRunner(
        build_demo_ecosystem, DEMO_PLACEMENT, scenario=demo_scenario
    )
    round_no = 0
    try:
        runner.start()
        while True:
            round_no += 1
            runner.run_scenarios()
            runner.quiesce()
            health = runner.cluster_request("health_report")
            metrics = runner.cluster_request("metrics_dump")
            if as_json:
                print(json.dumps(
                    {"round": round_no, "health": health,
                     "metrics": {
                         shard: entry["metrics"]
                         for shard, entry in metrics["shards"].items()
                     }},
                    indent=2, sort_keys=True,
                ))
            else:
                for line in _render_cluster_round(round_no, health, metrics):
                    print(line)
            if with_prometheus:
                for shard in sorted(metrics["shards"]):
                    print(metrics["shards"][shard]["prometheus"], end="")
            if rounds and round_no >= rounds:
                break
            time.sleep(interval)
        runner.finish()
        return 0
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0
    except BrokenPipeError:  # pragma: no cover - `watch ... | head` exit
        return 0
    finally:
        os.environ.pop(TRACE_ENV, None)
        runner.close()


def watch_command(args: List[str]) -> int:
    once = "--once" in args
    rounds = int(_flag_value(args, "--rounds", 1 if once else 0))
    interval = _flag_value(args, "--interval", 1.0)
    writes = int(_flag_value(args, "--writes", 20))
    as_json = "--json" in args
    with_prometheus = "--prometheus" in args

    if "--cluster" in args:
        return _cluster_watch(
            rounds, interval, writes, as_json, with_prometheus
        )

    eco, pub, sub, item_cls = _build_demo_ecosystem()
    items: List[Any] = []
    round_no = 0
    try:
        while True:
            round_no += 1
            raw = pub.raw_session()
            with pub.controller():
                for i in range(writes):
                    if items and i % 2:
                        target = items[i % len(items)]
                        target.score += 1
                        target.save()
                    else:
                        items.append(
                            item_cls.create(name=f"item-{round_no}-{i}", score=0)
                        )
            # A few raw writes per round keep the cdc row live.
            for i in range(max(1, writes // 5)):
                raw.insert(
                    "Item", {"name": f"raw-{round_no}-{i}", "score": 0}
                )
            eco.cdc.poll_all()
            sub.subscriber.drain()
            # Exercise the read path so the cache row has live numbers.
            sub.views.read("item_count")
            sub.views.read("score_total")

            if as_json:
                print(to_json(eco.metrics, monitor=eco.monitor))
            else:
                for line in _render_round(eco, round_no):
                    print(line)
            if with_prometheus:
                print(to_prometheus(eco.metrics), end="")

            if rounds and round_no >= rounds:
                break
            time.sleep(interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    except BrokenPipeError:  # pragma: no cover - `watch ... | head` exit
        return 0

    report = eco.monitor.health()
    if not report.links:
        print("watch: no replication links discovered")
        return 1
    return 0
