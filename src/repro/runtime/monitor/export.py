"""Registry exposition: Prometheus text format and JSON.

Counters export as ``counter`` samples, gauges as ``gauge`` samples,
histograms as ``summary`` families (``{quantile="0.5"|"0.99"}`` +
``_sum`` + ``_count``), all
under the ``repro_`` prefix with dots mangled to underscores — e.g.
``subscriber.sub.dep_wait`` becomes ``repro_subscriber_sub_dep_wait``.
Mangling is a pure function of the registry name, so exposition names
are stable across snapshots and processes.

:func:`parse_prometheus` is the round-trip half: it parses the text
format back into ``{name: value | summary-dict}`` so tests (and
scrape-side tooling) can assert that every registry instrument survives
exposition.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict

#: Every exported sample name starts with this.
PREFIX = "repro_"

_QUANTILES = (("0.5", 50), ("0.99", 99))

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)


def mangle(name: str) -> str:
    """Registry dot-name -> Prometheus sample name."""
    safe = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    return PREFIX + safe


def to_prometheus(registry: Any) -> str:
    """Render every instrument of ``registry`` in Prometheus text format."""
    counters, histograms = registry.instruments()
    gauges = registry.gauges() if hasattr(registry, "gauges") else {}
    lines = []
    for name in sorted(counters):
        sample = mangle(name)
        lines.append(f"# TYPE {sample} counter")
        lines.append(f"{sample} {counters[name].value}")
    for name in sorted(gauges):
        sample = mangle(name)
        lines.append(f"# TYPE {sample} gauge")
        lines.append(f"{sample} {gauges[name].value:.9g}")
    for name in sorted(histograms):
        histogram = histograms[name]
        sample = mangle(name)
        lines.append(f"# TYPE {sample} summary")
        for quantile, p in _QUANTILES:
            lines.append(
                f'{sample}{{quantile="{quantile}"}} {histogram.percentile(p):.9g}'
            )
        lines.append(f"{sample}_sum {histogram.total():.9g}")
        lines.append(f"{sample}_count {histogram.count}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[str, Any]:
    """Parse :func:`to_prometheus` output back into plain data.

    Counters map to their integer-ish value; summaries map to
    ``{"quantiles": {"0.5": v, "0.99": v}, "sum": v, "count": n}``.
    """
    out: Dict[str, Any] = {}
    summaries: Dict[str, Dict[str, Any]] = {}
    types: Dict[str, str] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {line!r}")
        name = match.group("name")
        labels = match.group("labels")
        value = float(match.group("value"))
        if name.endswith("_sum") and types.get(name[:-4]) == "summary":
            summaries.setdefault(name[:-4], {})["sum"] = value
        elif name.endswith("_count") and types.get(name[:-6]) == "summary":
            summaries.setdefault(name[:-6], {})["count"] = int(value)
        elif types.get(name) == "summary" and labels:
            quantile = labels.split("=", 1)[1].strip('"')
            summaries.setdefault(name, {}).setdefault("quantiles", {})[
                quantile
            ] = value
        else:
            out[name] = int(value) if value == int(value) else value
    out.update(summaries)
    return out


def to_json(registry: Any, monitor: Any = None) -> str:
    """JSON exposition: the full snapshot, exemplars, and (when a
    :class:`~repro.runtime.monitor.lag.LagMonitor` is given) the health
    report — one document for dashboards and the ``watch`` CLI."""
    payload: Dict[str, Any] = {
        "metrics": registry.snapshot(),
        "exemplars": registry.exemplars(),
    }
    if monitor is not None:
        payload["health"] = monitor.health().to_dict()
    return json.dumps(payload, indent=2, sort_keys=True)
