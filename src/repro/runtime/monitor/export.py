"""Registry exposition: Prometheus text format and JSON.

Counters export as ``counter`` samples, gauges as ``gauge`` samples,
histograms as ``summary`` families (``{quantile="0.5"|"0.99"}`` +
``_sum`` + ``_count``), all
under the ``repro_`` prefix with dots mangled to underscores — e.g.
``subscriber.sub.dep_wait`` becomes ``repro_subscriber_sub_dep_wait``.
Mangling is a pure function of the registry name, so exposition names
are stable across snapshots and processes.

:func:`parse_prometheus` is the round-trip half: it parses the text
format back into ``{name: value | summary-dict}`` so tests (and
scrape-side tooling) can assert that every registry instrument survives
exposition.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Optional

#: Every exported sample name starts with this.
PREFIX = "repro_"

_QUANTILES = (("0.5", 50), ("0.99", 99))

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)

_LABEL_KEY_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")


def mangle(name: str) -> str:
    """Registry dot-name -> Prometheus sample name."""
    safe = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    return PREFIX + safe


def escape_label_value(value: str) -> str:
    """Escape one label value per the exposition format: ``\\`` -> ``\\\\``,
    ``"`` -> ``\\"``, newline -> ``\\n`` (hostile service/shard names must
    not be able to break out of the quoted string)."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def unescape_label_value(value: str) -> str:
    out: list = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def format_labels(labels: Dict[str, str]) -> str:
    """``{key="escaped value",...}`` with sorted keys; "" when empty."""
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{escape_label_value(str(labels[key]))}"'
        for key in sorted(labels)
    )
    return "{" + body + "}"


def _parse_labels(raw: str) -> Dict[str, str]:
    """Scan a label body, honouring ``\\"`` escapes inside quoted values
    (the regex above captures greedily up to the final ``}``)."""
    labels: Dict[str, str] = {}
    i = 0
    while i < len(raw):
        if raw[i] in ", ":
            i += 1
            continue
        match = _LABEL_KEY_RE.match(raw, i)
        if match is None:
            raise ValueError(f"unparseable label body: {raw!r}")
        key = match.group(0)
        i = match.end()
        if raw[i:i + 2] != '="':
            raise ValueError(f"unparseable label body: {raw!r}")
        i += 2
        start = i
        while i < len(raw):
            if raw[i] == "\\":
                i += 2
                continue
            if raw[i] == '"':
                break
            i += 1
        if i >= len(raw):
            raise ValueError(f"unterminated label value in: {raw!r}")
        labels[key] = unescape_label_value(raw[start:i])
        i += 1  # past the closing quote
    return labels


def to_prometheus(registry: Any, labels: Optional[Dict[str, str]] = None) -> str:
    """Render every instrument of ``registry`` in Prometheus text format.

    ``labels`` (e.g. ``{"shard": "shard0"}``) are attached to every
    sample — the cluster watch view merges per-shard registries into one
    exposition this way — escaped per the format, so hostile names
    cannot corrupt the exposition.
    """
    suffix = format_labels(labels or {})
    lines = []
    counters, histograms = registry.instruments()
    gauges = registry.gauges() if hasattr(registry, "gauges") else {}
    for name in sorted(counters):
        sample = mangle(name)
        lines.append(f"# TYPE {sample} counter")
        lines.append(f"{sample}{suffix} {counters[name].value}")
    for name in sorted(gauges):
        sample = mangle(name)
        lines.append(f"# TYPE {sample} gauge")
        lines.append(f"{sample}{suffix} {gauges[name].value:.9g}")
    for name in sorted(histograms):
        histogram = histograms[name]
        sample = mangle(name)
        lines.append(f"# TYPE {sample} summary")
        for quantile, p in _QUANTILES:
            quantile_labels = format_labels(
                dict(labels or {}, quantile=quantile)
            )
            lines.append(
                f"{sample}{quantile_labels} {histogram.percentile(p):.9g}"
            )
        lines.append(f"{sample}_sum{suffix} {histogram.total():.9g}")
        lines.append(f"{sample}_count{suffix} {histogram.count}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[str, Any]:
    """Parse :func:`to_prometheus` output back into plain data.

    Counters map to their integer-ish value; summaries map to
    ``{"quantiles": {"0.5": v, "0.99": v}, "sum": v, "count": n}``.
    Samples carrying labels beyond ``quantile`` are keyed by
    ``name{canonical-labels}`` (sorted, re-escaped) and additionally
    expose their parsed labels under a ``"labels"`` entry for summaries,
    so a merged multi-shard exposition round-trips losslessly.
    """
    out: Dict[str, Any] = {}
    summaries: Dict[str, Dict[str, Any]] = {}
    types: Dict[str, str] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {line!r}")
        name = match.group("name")
        raw_labels = match.group("labels")
        labels = _parse_labels(raw_labels) if raw_labels else {}
        quantile = labels.pop("quantile", None)
        value = float(match.group("value"))
        # Extra labels (shard, service, ...) become part of the key, so
        # the same instrument from two shards stays two entries.
        key_suffix = format_labels(labels)

        def _summary(base: str) -> Dict[str, Any]:
            entry = summaries.setdefault(base + key_suffix, {})
            if labels:
                entry["labels"] = labels
            return entry

        if name.endswith("_sum") and types.get(name[:-4]) == "summary":
            _summary(name[:-4])["sum"] = value
        elif name.endswith("_count") and types.get(name[:-6]) == "summary":
            _summary(name[:-6])["count"] = int(value)
        elif types.get(name) == "summary" and quantile is not None:
            _summary(name).setdefault("quantiles", {})[quantile] = value
        else:
            out[name + key_suffix] = (
                int(value) if value == int(value) else value
            )
    out.update(summaries)
    return out


def to_json(registry: Any, monitor: Any = None) -> str:
    """JSON exposition: the full snapshot, exemplars, and (when a
    :class:`~repro.runtime.monitor.lag.LagMonitor` is given) the health
    report — one document for dashboards and the ``watch`` CLI."""
    payload: Dict[str, Any] = {
        "metrics": registry.snapshot(),
        "exemplars": registry.exemplars(),
    }
    if monitor is not None:
        payload["health"] = monitor.health().to_dict()
    return json.dumps(payload, indent=2, sort_keys=True)
