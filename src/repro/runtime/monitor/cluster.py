"""The cluster observability plane: one merged picture of a sharded run.

PR 6 split the ecosystem into OS-process shards and left every trace,
metric window and postmortem dump stopping at the process boundary. This
module is the layer that stitches them back together, Dapper-style,
using the two seams a shard already has — the broker forward path and
the control plane:

- **trace context on the wire** — a sampled message carries its trace in
  the data-plane payload; the origin shard keeps its half as a *partial*
  (``Tracer.record_partial``) and the receiving shard finishes the same
  trace_id, so ``trace_fetch`` can reassemble intercept→route→forward→
  dwell→apply spans from different processes into one tree. Control
  requests issued under an active trace carry a ``trace`` context, and
  the serving shard records a ``control.<op>`` span for them.
- **clock offsets** — spans are stamped with ``trace_now()``, a
  per-process monotonic clock; the plane estimates each peer's offset
  with ping-style ``clock_probe`` ops (offset = peer time minus the RTT
  midpoint, best of several probes) and normalizes remote spans onto the
  assembling shard's clock. Residual skew can still reorder spans, so
  assembly clamps them into pipeline-causal order (apply never renders
  before route) and flags what it moved.
- **federation ops** — every shard registers a pseudo-service
  ``_shard:<name>`` on the control plane answering ``clock_probe``,
  ``metrics_dump``, ``health_report``, ``trace_ids``, ``trace_fetch``
  and ``flight_dump``; any shard (or the parent CLI, via
  ``ShardRunner.cluster_request``) can pull the whole cluster's metrics,
  health and traces through one shard. Every per-shard Prometheus
  rendering carries a ``shard`` label.
- **correlated postmortems** — when a shard's FlightRecorder auto-dumps
  an anomaly, its ``incident_sink`` calls :meth:`ClusterPlane.
  broadcast_incident`: the shard dumps its rings into
  ``<incident_root>/<incident-id>/<shard>.jsonl`` and asks every peer
  (``flight_dump``) to dump its matching window into the same incident
  directory — a breach on the subscriber shard freezes the publisher
  shard's admission/coalesce/WAL evidence for the same messages.

A dead peer degrades, never hangs: federation calls have structured
timeouts, unreachable shards are reported as ``missing`` (the trace
renderer prints a ``missing-hop`` marker), and :func:`cluster_quiesce`
falls back to counter-stability when a peer link has died.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ControlPlaneError, TransportError, TransportTimeout
from repro.runtime.tracing import (
    PIPELINE_STAGES,
    STAGE_APPLY,
    STAGE_BATCH,
    STAGE_DEP_WAIT,
    STAGE_DWELL,
    STAGE_FORWARD,
    STAGE_INTERCEPT,
    STAGE_ROUTE,
    trace_now,
)
from repro.runtime.transport.envelopes import ControlRequest, ControlResponse

#: Control-plane name of a shard's cluster pseudo-service. The prefix
#: cannot collide with real services (service names are identifiers).
SHARD_SERVICE_PREFIX = "_shard:"

#: Ping probes per peer when estimating clock offsets (best RTT wins).
CLOCK_PROBES = 3

#: Consecutive stable all-idle polls required before the mesh counts as
#: quiescent (one poll can race a forwarded payload still in a pipe).
QUIESCENT_POLLS = 2

#: The linear causal chain a cross-shard delivery walks, in order; the
#: assembled critical path picks the latest-finishing span of each.
CRITICAL_CHAIN = (
    STAGE_INTERCEPT,
    STAGE_ROUTE,
    STAGE_FORWARD,
    STAGE_DWELL,
    STAGE_DEP_WAIT,
    STAGE_APPLY,
    STAGE_BATCH,
)


def shard_service(shard_name: str) -> str:
    """The control-plane address of ``shard_name``'s cluster handler."""
    return SHARD_SERVICE_PREFIX + shard_name


class ClusterHandler:
    """Answers a peer's (or the local loopback's) cluster federation ops
    against one :class:`ClusterPlane` — same shape as the per-service
    :class:`~repro.runtime.transport.handler.ControlPlaneHandler`."""

    def __init__(self, cluster: "ClusterPlane") -> None:
        self.cluster = cluster
        self._ops: Dict[str, Callable[[Dict[str, Any]], Dict[str, Any]]] = {
            "ping": self._op_ping,
            "clock_probe": self._op_clock_probe,
            "metrics_dump": self._op_metrics_dump,
            "health_report": self._op_health_report,
            "trace_ids": self._op_trace_ids,
            "trace_fetch": self._op_trace_fetch,
            "flight_dump": self._op_flight_dump,
        }

    def handle(self, request: ControlRequest) -> ControlResponse:
        op = self._ops.get(request.op)
        if op is None:
            return ControlResponse.failure(
                request.request_id,
                "UnknownOperation",
                f"shard {self.cluster.shard_name!r} has no cluster op "
                f"{request.op!r}",
            )
        try:
            return ControlResponse.success(request, op(request.params))
        except Exception as exc:  # structured error, never a raw traceback
            return ControlResponse.failure(
                request.request_id, type(exc).__name__, str(exc)
            )

    # -- ops (always local: federation happens in ClusterPlane) -------------

    def _op_ping(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return {"shard": self.cluster.shard_name, "pong": True}

    def _op_clock_probe(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """The peer's span clock, read as late as possible: the requester
        brackets the call with its own clock and takes the RTT midpoint."""
        return {"shard": self.cluster.shard_name, "now": trace_now()}

    def _op_metrics_dump(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return self.cluster.local_metrics()

    def _op_health_report(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return self.cluster.local_health(
            drain=bool(params.get("drain", False)),
            evaluate=bool(params.get("evaluate", True)),
        )

    def _op_trace_ids(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return self.cluster.local_trace_ids()

    def _op_trace_fetch(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return self.cluster.local_trace_spans(params["uid"])

    def _op_flight_dump(self, params: Dict[str, Any]) -> Dict[str, Any]:
        path = self.cluster.dump_incident(
            params["incident"], params.get("reason", "peer-incident")
        )
        return {"shard": self.cluster.shard_name, "path": path}


class ClusterPlane:
    """One shard's view of — and window into — the whole cluster.

    Created by the shard worker entry point (``eco.cluster``); also
    usable single-process with ``peers=()`` where every federation call
    degenerates to the loopback transport.
    """

    def __init__(
        self,
        ecosystem: Any,
        shard_name: str,
        peers: Tuple[str, ...] = (),
        links: Optional[Dict[str, Any]] = None,
        incident_root: Optional[str] = None,
        op_timeout: float = 5.0,
        span_capacity: int = 1024,
    ) -> None:
        self.ecosystem = ecosystem
        self.shard_name = shard_name
        self.peers = [p for p in peers if p != shard_name]
        #: peer shard -> PeerLink (the shard worker fills this in); used
        #: for the forwarded-payload counters in the idle state.
        self.links: Dict[str, Any] = links if links is not None else {}
        self.incident_root = incident_root
        self.op_timeout = op_timeout
        #: peer shard -> (peer trace clock - local trace clock).
        self._offsets: Dict[str, float] = {}
        #: trace_id -> spans recorded here for *remote* traces (control
        #: ops served on behalf of another shard's sampled message).
        self._remote_spans: Dict[str, List[Dict[str, Any]]] = {}
        self._remote_order: List[str] = []
        self._span_capacity = span_capacity
        self._lock = threading.Lock()
        self._incident_seq = 0
        self._broadcasting = threading.local()

    # -- wiring --------------------------------------------------------------

    def install(self) -> "ClusterPlane":
        """Register this plane's pseudo-service on the local control
        plane and hand it to the ecosystem (peer routes are added by the
        shard worker alongside the per-service routes)."""
        self.ecosystem.control.register_handler(
            shard_service(self.shard_name), ClusterHandler(self)
        )
        self.ecosystem.cluster = self
        self.ecosystem.recorder.incident_sink = self.broadcast_incident
        return self

    def known_shards(self) -> List[str]:
        return [self.shard_name] + sorted(self.peers)

    # -- local answers (served to peers and to our own loopback) -------------

    def local_metrics(self) -> Dict[str, Any]:
        from repro.runtime.monitor.export import to_prometheus

        return {
            "shard": self.shard_name,
            "metrics": self.ecosystem.metrics.snapshot(),
            "prometheus": to_prometheus(
                self.ecosystem.metrics, labels={"shard": self.shard_name}
            ),
        }

    def local_idle_state(self, drain: bool = False) -> Dict[str, int]:
        cdc = getattr(self.ecosystem, "cdc", None)
        if drain:
            if cdc is not None:
                # Tail outboxes first: a raw write the poller has not
                # published yet is in-flight work, not idleness.
                cdc.poll_all()
            for service in self.ecosystem.local_services():
                service.subscriber.drain()
        broker = self.ecosystem.broker
        backlog = sum(broker.backlog().values())
        in_flight = sum(broker.in_flight().values())
        outbox = cdc.backlog() if cdc is not None else 0
        return {
            "idle": int(backlog == 0 and in_flight == 0 and outbox == 0),
            "backlog": backlog,
            "in_flight": in_flight,
            "outbox": outbox,
            "sent": sum(link.data_sent for link in self.links.values()),
            "received": sum(link.data_received for link in self.links.values()),
        }

    def local_health(
        self, drain: bool = False, evaluate: bool = True
    ) -> Dict[str, Any]:
        """Idle/forward-counter state plus (optionally) the full SLO
        evaluation. Quiescence polling passes ``evaluate=False`` so it
        neither pays for queue scans nor emits breach transitions."""
        out: Dict[str, Any] = {"shard": self.shard_name}
        out.update(self.local_idle_state(drain=drain))
        if evaluate:
            out["health"] = self.ecosystem.monitor.health().to_dict()
        return out

    def local_trace_ids(self) -> Dict[str, Any]:
        tracer = self.ecosystem.tracer
        ids = {t.trace_id for t in tracer.finished()}
        ids.update(t.trace_id for t in tracer.partials())
        with self._lock:
            ids.update(self._remote_spans)
        return {"shard": self.shard_name, "ids": sorted(ids)}

    def local_trace_spans(self, uid: str) -> Dict[str, Any]:
        """Every span this shard holds for ``uid``: finished traces,
        origin-side partials, and control-op spans served for peers."""
        tracer = self.ecosystem.tracer
        spans: List[Dict[str, Any]] = []
        found = False
        for trace in tracer.finished() + tracer.partials():
            if trace.trace_id != uid:
                continue
            found = True
            for span in trace.spans:
                entry = span.to_dict()
                entry.setdefault("shard", self.shard_name)
                spans.append(entry)
        with self._lock:
            extra = list(self._remote_spans.get(uid, ()))
        if extra:
            found = True
            spans.extend(extra)
        return {"shard": self.shard_name, "found": found, "spans": spans}

    def record_remote_span(
        self, trace_ctx: Dict[str, Any], stage: str,
        start: float, duration: float,
    ) -> None:
        """Record serving a control op under someone else's trace (called
        by the pipe dispatcher when a request carries trace context)."""
        trace_id = trace_ctx.get("trace_id")
        if not trace_id:
            return
        entry = {
            "stage": stage,
            "start": start,
            "duration": duration,
            "shard": self.shard_name,
        }
        with self._lock:
            if trace_id not in self._remote_spans:
                self._remote_order.append(trace_id)
                while len(self._remote_order) > self._span_capacity:
                    self._remote_spans.pop(self._remote_order.pop(0), None)
            self._remote_spans.setdefault(trace_id, []).append(entry)

    # -- clock offsets -------------------------------------------------------

    def estimate_offsets(self, probes: int = CLOCK_PROBES) -> Dict[str, float]:
        """Probe every peer not yet estimated; unreachable peers are
        skipped (their spans render unnormalized, with a note)."""
        for peer in self.peers:
            if peer in self._offsets:
                continue
            try:
                self.probe_offset(peer, probes=probes)
            except (ControlPlaneError, TransportError):
                pass
        return dict(self._offsets)

    def probe_offset(self, peer: str, probes: int = CLOCK_PROBES) -> float:
        """NTP-style offset estimate: the peer's clock read is assumed to
        happen at the RTT midpoint; the probe with the smallest RTT bounds
        the error tightest, so its estimate wins."""
        best: Optional[Tuple[float, float]] = None
        for _ in range(max(1, probes)):
            t0 = trace_now()
            result = self.ecosystem.control.request(
                shard_service(peer), "clock_probe", timeout=self.op_timeout
            )
            t1 = trace_now()
            offset = float(result["now"]) - (t0 + t1) / 2.0
            if best is None or (t1 - t0) < best[0]:
                best = (t1 - t0, offset)
        self._offsets[peer] = best[1]
        return best[1]

    def offset_of(self, shard: str) -> Optional[float]:
        """Seconds to subtract from ``shard``'s span timestamps to land
        on this shard's clock; None when never estimated."""
        if shard in ("", self.shard_name):
            return 0.0
        return self._offsets.get(shard)

    # -- federation ----------------------------------------------------------

    def _federate(
        self, op: str, **params: Any
    ) -> Tuple[Dict[str, Dict[str, Any]], List[str]]:
        """Ask every shard (self included, via loopback) one op; shards
        that fail or time out land in the ``missing`` list instead of
        failing the whole federation."""
        results: Dict[str, Dict[str, Any]] = {}
        missing: List[str] = []
        for shard in self.known_shards():
            try:
                results[shard] = self.ecosystem.control.request(
                    shard_service(shard), op,
                    timeout=self.op_timeout, **params,
                )
            except (ControlPlaneError, TransportError):
                missing.append(shard)
        return results, missing

    def metrics_dump(self) -> Dict[str, Any]:
        results, missing = self._federate("metrics_dump")
        return {"shards": results, "missing": missing}

    def health_report(
        self, drain: bool = False, evaluate: bool = True
    ) -> Dict[str, Any]:
        results, missing = self._federate(
            "health_report", drain=drain, evaluate=evaluate
        )
        return {"shards": results, "missing": missing}

    def trace_ids(self) -> Dict[str, Any]:
        results, missing = self._federate("trace_ids")
        return {"shards": results, "missing": missing}

    def fetch_trace(self, uid: str) -> Dict[str, Any]:
        """Pull every shard's spans for ``uid`` and assemble one tree
        with normalized timestamps, per-hop latency and a critical path."""
        self.estimate_offsets()
        results, missing = self._federate("trace_fetch", uid=uid)
        return assemble_trace(
            uid, list(results.values()), missing, self.offset_of,
            self.shard_name,
        )

    def serve(self, op: str, params: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Entry point for parent-CLI commands relayed by the shard
        worker (``ShardRunner.cluster_request``): federated ops by name."""
        params = params or {}
        if op == "metrics_dump":
            return self.metrics_dump()
        if op == "health_report":
            return self.health_report(
                drain=bool(params.get("drain", False)),
                evaluate=bool(params.get("evaluate", True)),
            )
        if op == "trace_ids":
            return self.trace_ids()
        if op == "trace_fetch":
            return self.fetch_trace(params["uid"])
        if op == "offsets":
            return {
                "shard": self.shard_name,
                "offsets": self.estimate_offsets(),
            }
        raise ControlPlaneError(
            f"unknown cluster op {op!r}", error_type="UnknownOperation",
            op=op,
        )

    # -- correlated postmortems ----------------------------------------------

    def broadcast_incident(self, reason: str) -> Optional[str]:
        """One shard's anomaly dump becomes everyone's: mint an incident
        id, dump the local rings into the incident directory, and ask
        every peer to dump its matching window there too. Re-entrant
        calls (a dead-peer anomaly raised *while* broadcasting) are
        dropped instead of recursing."""
        if self.incident_root is None:
            return None
        if getattr(self._broadcasting, "active", False):
            return None
        self._broadcasting.active = True
        try:
            with self._lock:
                self._incident_seq += 1
                seq = self._incident_seq
            safe_reason = "".join(
                ch if ch.isalnum() or ch in "-_." else "_" for ch in reason
            )
            incident_id = f"incident-{self.shard_name}-{seq:03d}-{safe_reason}"
            self.dump_incident(incident_id, reason)
            for peer in self.peers:
                try:
                    self.ecosystem.control.request(
                        shard_service(peer), "flight_dump",
                        timeout=self.op_timeout,
                        incident=incident_id, reason=reason,
                    )
                except (ControlPlaneError, TransportError):
                    pass  # a dead peer cannot contribute its window
            return incident_id
        finally:
            self._broadcasting.active = False

    def dump_incident(self, incident_id: str, reason: str) -> str:
        """Dump the local rings into the shared incident directory."""
        if self.incident_root is None:
            raise ControlPlaneError(
                f"shard {self.shard_name!r} has no incident_root configured",
                error_type="NoIncidentRoot", op="flight_dump",
            )
        safe_id = "".join(
            ch if ch.isalnum() or ch in "-_." else "_" for ch in incident_id
        )
        path = os.path.join(
            self.incident_root, safe_id, f"{self.shard_name}.jsonl"
        )
        return self.ecosystem.recorder.dump_to(path, reason=reason)


# -- trace assembly ---------------------------------------------------------


def assemble_trace(
    uid: str,
    shard_results: List[Dict[str, Any]],
    missing: List[str],
    offset_of: Callable[[str], Optional[float]],
    local_shard: str,
) -> Dict[str, Any]:
    """Merge per-shard span sets into one normalized, causally-ordered
    tree (a plain JSON-ish dict: it crosses the command pipe to the CLI).

    Steps: dedup (origin partials and finished traces overlap on the
    publisher-side spans), normalize each span's start onto the
    assembling shard's clock via ``offset_of``, sort by pipeline stage
    rank, then clamp starts to be non-decreasing along the rank order —
    offset estimates carry RTT/2-scale error, and a causally-impossible
    rendering (apply before route) is worse than a slightly-shifted one.
    Clamped spans are flagged ``adjusted``.
    """
    order = {stage: i for i, stage in enumerate(PIPELINE_STAGES)}
    control_rank = len(PIPELINE_STAGES)
    seen = set()
    spans: List[Dict[str, Any]] = []
    for result in shard_results:
        for entry in result.get("spans", ()):
            shard = entry.get("shard") or result.get("shard") or local_shard
            key = (
                shard, entry["stage"],
                round(float(entry["start"]), 9),
                round(float(entry["duration"]), 9),
            )
            if key in seen:
                continue
            seen.add(key)
            spans.append({
                "stage": entry["stage"],
                "shard": shard,
                "start": float(entry["start"]),
                "duration": float(entry["duration"]),
            })
    unnormalized = set()
    for span in spans:
        offset = offset_of(span["shard"])
        if offset is None:
            unnormalized.add(span["shard"])
        else:
            span["start"] -= offset
    spans.sort(key=lambda s: (order.get(s["stage"], control_rank), s["start"]))
    frontier: Optional[float] = None
    for span in spans:
        if span["stage"] not in order:
            continue  # control.* spans are annotations, not pipeline stages
        if frontier is not None and span["start"] < frontier:
            span["start"] = frontier
            span["adjusted"] = True
        frontier = span["start"] if frontier is None \
            else max(frontier, span["start"])
    # Per-hop transit: the gap between consecutive spans of the timeline
    # whenever the shard changes hands.
    timeline = sorted(
        (s for s in spans if s["stage"] in order), key=lambda s: s["start"]
    )
    hops = []
    for prev, nxt in zip(timeline, timeline[1:]):
        if prev["shard"] != nxt["shard"]:
            hops.append({
                "from": prev["shard"],
                "to": nxt["shard"],
                "transit": max(
                    0.0, nxt["start"] - (prev["start"] + prev["duration"])
                ),
            })
    critical = []
    for stage in CRITICAL_CHAIN:
        candidates = [s for s in spans if s["stage"] == stage]
        if candidates:
            critical.append(
                max(candidates, key=lambda s: s["start"] + s["duration"])
            )
    end_to_end = 0.0
    if critical:
        end_to_end = (
            max(s["start"] + s["duration"] for s in critical)
            - min(s["start"] for s in critical)
        )
    return {
        "uid": uid,
        "assembled_by": local_shard,
        "found": any(r.get("found") for r in shard_results),
        "spans": spans,
        "shards": sorted({s["shard"] for s in spans}),
        "missing": sorted(missing),
        "unnormalized": sorted(unnormalized),
        "hops": hops,
        "critical_path": [
            {"stage": s["stage"], "shard": s["shard"],
             "duration": s["duration"]}
            for s in critical
        ],
        "end_to_end": end_to_end,
    }


def format_assembled_trace(assembled: Dict[str, Any]) -> List[str]:
    """Render one assembled cross-shard trace for the CLI."""
    shards = ", ".join(assembled["shards"]) or "none"
    lines = [f"assembled trace {assembled['uid']} (shards: {shards}):"]
    if not assembled["found"]:
        lines.append("  no shard holds spans for this uid")
    base = min((s["start"] for s in assembled["spans"]), default=0.0)
    for span in assembled["spans"]:
        flag = "  ~clamped" if span.get("adjusted") else ""
        lines.append(
            f"  [{span['shard']}] {span['stage']:<24} "
            f"+{(span['start'] - base) * 1000:9.3f} ms  "
            f"{span['duration'] * 1000:9.3f} ms{flag}"
        )
    for hop in assembled["hops"]:
        lines.append(
            f"  hop {hop['from']} -> {hop['to']}: "
            f"transit {hop['transit'] * 1000:.3f} ms"
        )
    if assembled["critical_path"]:
        chain = " -> ".join(
            f"{entry['stage'].split('.')[-1]}({entry['shard']})"
            for entry in assembled["critical_path"]
        )
        lines.append(
            f"  critical path: {chain} = {assembled['end_to_end'] * 1000:.3f} ms"
        )
    for shard in assembled["missing"]:
        lines.append(f"  missing-hop: {shard} (unreachable during trace_fetch)")
    for shard in assembled["unnormalized"]:
        lines.append(
            f"  note: no clock offset for {shard}; its spans are on its "
            "own clock"
        )
    return lines


# -- cluster quiescence ------------------------------------------------------


def cluster_quiesce(
    ecosystem: Any, timeout: float = 30.0, poll_interval: float = 0.02
) -> int:
    """Drain the whole mesh from inside one shard: poll every shard's
    ``health_report`` (with ``drain=True``, so each shard drains its own
    queues as part of answering) until all reachable shards are idle and
    the forwarded-payload counters balance, stable across
    :data:`QUIESCENT_POLLS` consecutive polls.

    When a peer is unreachable (a crash-recovery phase kills shards on
    purpose), sent==received can never balance — the dead shard's
    counters are gone — so the criterion degrades to the *live* shards
    being idle with stable counters. Returns the number of polls; raises
    :class:`TransportTimeout` if the deadline passes first.
    """
    cluster: Optional[ClusterPlane] = getattr(ecosystem, "cluster", None)
    deadline = time.monotonic() + timeout
    stable = 0
    last: Optional[Tuple] = None
    polls = 0
    while time.monotonic() < deadline:
        polls += 1
        states: List[Dict[str, Any]] = []
        dead: List[str] = []
        if cluster is None:
            # Single-process ecosystem: drain locally, no counters to
            # balance. With CDC enabled the outbox tail is drained
            # first and counts against idleness like queue backlog.
            cdc = getattr(ecosystem, "cdc", None)
            if cdc is not None:
                cdc.poll_all()
            for service in ecosystem.local_services():
                service.subscriber.drain()
            broker = ecosystem.broker
            backlog = sum(broker.backlog().values())
            in_flight = sum(broker.in_flight().values())
            outbox = cdc.backlog() if cdc is not None else 0
            states.append({
                "idle": int(backlog == 0 and in_flight == 0 and outbox == 0),
                "sent": 0, "received": 0,
            })
        else:
            report = cluster.health_report(drain=True, evaluate=False)
            dead = list(report["missing"])
            states = list(report["shards"].values())
        if states and all(state["idle"] for state in states):
            sent = sum(state["sent"] for state in states)
            received = sum(state["received"] for state in states)
            settled = (sent == received) if not dead else True
            if settled:
                key = (sent, received, tuple(sorted(dead)))
                stable = stable + 1 if last == key else 1
                last = key
                if stable >= QUIESCENT_POLLS:
                    return polls
            else:
                stable, last = 0, None
        else:
            stable, last = 0, None
        time.sleep(poll_interval)
    raise TransportTimeout(
        f"cluster did not quiesce within {timeout:.0f}s"
    )
