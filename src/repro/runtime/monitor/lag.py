"""Per-link replication-lag SLOs and the live health report.

The paper's production claim is propagation delay staying sub-second at
Crowdtap scale (§6, Fig 11) — and §6.5 shows what happens when nobody
notices it stop being true. The :class:`LagMonitor` watches every
publisher→subscriber *link* of an ecosystem continuously:

- each applied message contributes its end-to-end lag (apply time minus
  ``published_at``, ecosystem clock) and queue dwell to a sliding-window
  histogram per link;
- a :class:`LinkSLO` (p99 threshold, error budget, stall deadline) is
  evaluated on demand by :meth:`LagMonitor.health`, using three breach
  signals: window p99 over threshold, budget burn rate over 1, or an
  in-transit message older than the stall deadline (a wedged link never
  applies anything, so its *window* looks healthy — the queue age is
  what gives it away);
- breach *transitions* emit ``slo.breach`` anomalies into the flight
  recorder (dumping the evidence once, not once per health poll).

SLO semantics, pinned down for the edge-case tests: a sample is "over"
iff strictly greater than the threshold; a link with an empty window and
nothing in transit is ``no_data`` (unknown, not breached); p99 exactly
at the threshold is compliant.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

STATUS_OK = "ok"
STATUS_BREACHED = "breached"
STATUS_NO_DATA = "no_data"

#: Registry namespace for the per-link instruments.
def _link_metric(publisher: str, subscriber: str, metric: str) -> str:
    return f"monitor.{publisher}_to_{subscriber}.{metric}"


@dataclass(frozen=True)
class LinkSLO:
    """The lag objective of one replication link.

    ``p99_lag`` — window p99 of end-to-end lag must be <= this (seconds).
    ``over_budget`` — allowed fraction of window samples strictly over
    ``p99_lag``; the burn rate is ``over_fraction / over_budget`` and a
    rate > 1 is a breach (classic error-budget burn).
    ``stall_after`` — any message queued or in flight for longer than
    this (seconds, ecosystem clock) breaches the link even if the apply
    window looks clean.
    ``window`` — sliding-window size in samples.
    """

    p99_lag: float = 1.0
    over_budget: float = 0.01
    stall_after: float = 30.0
    window: int = 1024


class SlidingWindow:
    """Bounded FIFO of the most recent lag samples (not a reservoir: SLO
    evaluation must see exactly the last N, oldest evicted first)."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("window size must be >= 1")
        self._samples: "deque[float]" = deque(maxlen=size)
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        with self._lock:
            self._samples.append(value)

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def values(self) -> List[float]:
        with self._lock:
            return list(self._samples)

    def percentile(self, p: float) -> float:
        with self._lock:
            if not self._samples:
                return 0.0
            ordered = sorted(self._samples)
            rank = max(1, math.ceil(p / 100.0 * len(ordered)))
            return ordered[rank - 1]

    def over_fraction(self, threshold: float) -> float:
        """Fraction of window samples strictly over ``threshold``."""
        with self._lock:
            if not self._samples:
                return 0.0
            over = sum(1 for value in self._samples if value > threshold)
            return over / len(self._samples)


@dataclass
class LinkHealth:
    """One link's evaluated state inside a :class:`HealthReport`."""

    publisher: str
    subscriber: str
    slo: LinkSLO
    samples: int = 0
    p50: float = 0.0
    p99: float = 0.0
    over_fraction: float = 0.0
    burn_rate: float = 0.0
    queued: int = 0
    in_flight: int = 0
    oldest_in_transit: float = 0.0
    version_lag: int = 0
    #: Counter deficit attributable to deliberate flow-control shedding
    #: (already excluded from ``version_lag``).
    shed_deficit: int = 0
    status: str = STATUS_NO_DATA
    #: Which signals fired: "p99_lag", "burn_rate", "stalled".
    reasons: List[str] = field(default_factory=list)
    #: Flow-control admission state of the subscriber's queue
    #: ("open"/"throttled"/"shedding"), or "" when flow control is off.
    backpressure: str = ""
    #: Remaining admission credits (None when flow control is off).
    credits: Optional[int] = None

    @property
    def breached(self) -> bool:
        return self.status == STATUS_BREACHED

    def to_dict(self) -> Dict[str, Any]:
        return {
            "publisher": self.publisher,
            "subscriber": self.subscriber,
            "status": self.status,
            "reasons": list(self.reasons),
            "samples": self.samples,
            "p50": self.p50,
            "p99": self.p99,
            "over_fraction": self.over_fraction,
            "burn_rate": self.burn_rate,
            "queued": self.queued,
            "in_flight": self.in_flight,
            "oldest_in_transit": self.oldest_in_transit,
            "version_lag": self.version_lag,
            "shed_deficit": self.shed_deficit,
            "backpressure": self.backpressure,
            "credits": self.credits,
            "slo": {
                "p99_lag": self.slo.p99_lag,
                "over_budget": self.slo.over_budget,
                "stall_after": self.slo.stall_after,
                "window": self.slo.window,
            },
        }

    def summary_line(self) -> str:
        tag = self.status.upper()
        if self.reasons:
            tag += f" ({','.join(self.reasons)})"
        line = (
            f"{self.publisher} -> {self.subscriber}: "
            f"p50={self.p50 * 1000:.1f}ms p99={self.p99 * 1000:.1f}ms "
            f"burn={self.burn_rate:.2f} queued={self.queued} "
            f"in_flight={self.in_flight} vlag={self.version_lag}"
        )
        if self.shed_deficit:
            line += f" shed={self.shed_deficit}"
        if self.backpressure:
            line += f" bp={self.backpressure}/{self.credits}"
        return line + f" [{tag}]"


@dataclass
class HealthReport:
    """Everything :meth:`LagMonitor.health` learned in one evaluation."""

    at: float
    links: List[LinkHealth] = field(default_factory=list)

    @property
    def breached(self) -> bool:
        return any(link.breached for link in self.links)

    def link(self, publisher: str, subscriber: str) -> Optional[LinkHealth]:
        for entry in self.links:
            if (entry.publisher, entry.subscriber) == (publisher, subscriber):
                return entry
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "at": self.at,
            "breached": self.breached,
            "links": [link.to_dict() for link in self.links],
        }

    def summary_lines(self) -> List[str]:
        lines = ["replication health:"]
        for link in self.links:
            lines.append("  " + link.summary_line())
        if not self.links:
            lines.append("  (no replication links)")
        return lines


class LagMonitor:
    """Continuous per-link lag monitoring for one ecosystem.

    Links are discovered from subscription declarations, not from
    observed traffic — a link that has never applied a message (wedged
    from the start) still shows up, as ``no_data`` or ``breached`` via
    the stall signal.
    """

    def __init__(
        self, ecosystem: Any, default_slo: Optional[LinkSLO] = None
    ) -> None:
        self.ecosystem = ecosystem
        self.default_slo = default_slo or LinkSLO()
        self._slos: Dict[Tuple[str, str], LinkSLO] = {}
        self._windows: Dict[Tuple[str, str], SlidingWindow] = {}
        self._breached: Dict[Tuple[str, str], bool] = {}
        self._lock = threading.Lock()

    # -- configuration ------------------------------------------------------

    def set_slo(self, publisher: str, subscriber: str, slo: LinkSLO) -> LinkSLO:
        """Pin one link's SLO (and re-arm its exemplar threshold)."""
        link = (publisher, subscriber)
        with self._lock:
            self._slos[link] = slo
            self._windows.pop(link, None)  # window size may have changed
        self._lag_histogram(publisher, subscriber).exemplar_threshold = slo.p99_lag
        return slo

    def slo_for(self, publisher: str, subscriber: str) -> LinkSLO:
        with self._lock:
            return self._slos.get((publisher, subscriber), self.default_slo)

    # -- instruments --------------------------------------------------------

    def _window_for(self, publisher: str, subscriber: str) -> SlidingWindow:
        link = (publisher, subscriber)
        with self._lock:
            window = self._windows.get(link)
            if window is None:
                slo = self._slos.get(link, self.default_slo)
                window = self._windows[link] = SlidingWindow(slo.window)
            return window

    def _lag_histogram(self, publisher: str, subscriber: str) -> Any:
        registry = self.ecosystem.metrics
        histogram = registry.histogram(_link_metric(publisher, subscriber, "lag"))
        if histogram.exemplar_threshold is None:
            # Arm exemplar capture at the SLO threshold: any over-SLO
            # apply observed under an active trace links percentile to
            # the offending message uid.
            histogram.exemplar_threshold = self.slo_for(publisher, subscriber).p99_lag
        return histogram

    # -- the hot-path hook --------------------------------------------------

    def observe_applied(self, subscriber_name: str, message: Any) -> None:
        """Called by the subscriber engine once per applied message."""
        lag = self.ecosystem.clock.now() - message.published_at
        if lag < 0:
            lag = 0.0
        publisher = message.app
        self._window_for(publisher, subscriber_name).record(lag)
        self._lag_histogram(publisher, subscriber_name).record(lag)
        dwell = getattr(message, "dwell", None)
        if dwell is not None:
            self.ecosystem.metrics.histogram(
                _link_metric(publisher, subscriber_name, "dwell")
            ).record(dwell)

    def link_pressure(self, subscriber_name: str) -> float:
        """Cheap AIMD signal for the flow-control batch sizer: the worst
        ``window p99 / SLO p99`` across the subscriber's publisher links
        (no full :meth:`health` evaluation, no queue scans)."""
        with self._lock:
            windows = list(self._windows.items())
        worst = 0.0
        for (publisher, subscriber), window in windows:
            if subscriber != subscriber_name or not len(window):
                continue
            slo = self.slo_for(publisher, subscriber)
            if slo.p99_lag > 0:
                worst = max(worst, window.percentile(99) / slo.p99_lag)
        return worst

    # -- link discovery -----------------------------------------------------

    def links(self) -> List[Tuple[str, str]]:
        """(publisher, subscriber) for every declared subscription."""
        out = set()
        for service in self.ecosystem.local_services():
            for publisher in service.subscriber.app_modes:
                out.add((publisher, service.name))
        return sorted(out)

    # -- evaluation ---------------------------------------------------------

    def health(self) -> HealthReport:
        """Evaluate every link against its SLO; emits ``slo.breach`` /
        ``slo.recovered`` recorder events on transitions."""
        now = self.ecosystem.clock.now()
        report = HealthReport(at=now)
        recorder = getattr(self.ecosystem, "recorder", None)
        for publisher, subscriber in self.links():
            entry = self._evaluate_link(publisher, subscriber, now)
            report.links.append(entry)
            link = (publisher, subscriber)
            was_breached = self._breached.get(link, False)
            if entry.breached and not was_breached:
                self._breached[link] = True
                if recorder is not None:
                    recorder.anomaly("slo.breach", **entry.to_dict())
            elif not entry.breached and was_breached:
                self._breached[link] = False
                if recorder is not None:
                    recorder.record_event("slo.recovered", **entry.to_dict())
        return report

    def _evaluate_link(
        self, publisher: str, subscriber: str, now: float
    ) -> LinkHealth:
        slo = self.slo_for(publisher, subscriber)
        window = self._window_for(publisher, subscriber)
        entry = LinkHealth(publisher=publisher, subscriber=subscriber, slo=slo)
        entry.samples = len(window)
        entry.p50 = window.percentile(50)
        entry.p99 = window.percentile(99)
        entry.over_fraction = window.over_fraction(slo.p99_lag)
        entry.burn_rate = (
            entry.over_fraction / slo.over_budget if slo.over_budget > 0 else 0.0
        )

        service = self.ecosystem.local_service(subscriber)
        if service is not None:
            queue = service.subscriber.queue
            if queue is not None:
                flow = queue.flow
                if flow is not None and flow.capacity is not None:
                    entry.backpressure = flow.state
                    entry.credits = flow.credits
                oldest = 0.0
                queued = in_flight = 0
                for message in queue.peek_all():
                    if message.app == publisher:
                        queued += 1
                        oldest = max(oldest, now - message.published_at)
                for message in queue.peek_unacked():
                    if message.app == publisher:
                        in_flight += 1
                        oldest = max(oldest, now - message.published_at)
                entry.queued = queued
                entry.in_flight = in_flight
                entry.oldest_in_transit = oldest
            # Publisher watermark read over the control plane (None when
            # the publisher is unreachable from this process).
            watermarks = self.ecosystem.control.watermarks(publisher)
            if watermarks is not None:
                deficits = service.subscriber_version_store.deficits(watermarks)
                # Deficits from deliberate shedding are backpressure,
                # not the §6.5 loss signature: reconcile the flow
                # ledger (trimming what repair has healed since) and
                # report the remainder separately.
                forgiven: Dict[str, int] = {}
                if queue is not None and queue.flow is not None:
                    forgiven = queue.flow.reconcile_shed(publisher, deficits)
                entry.shed_deficit = sum(forgiven.values())
                entry.version_lag = sum(
                    max(0, behind - forgiven.get(dep, 0))
                    for dep, behind in deficits.items()
                )

        if entry.oldest_in_transit > slo.stall_after:
            entry.reasons.append("stalled")
        if entry.samples:
            if entry.p99 > slo.p99_lag:
                entry.reasons.append("p99_lag")
            if entry.burn_rate > 1.0:
                entry.reasons.append("burn_rate")

        if entry.reasons:
            entry.status = STATUS_BREACHED
        elif entry.samples:
            entry.status = STATUS_OK
        else:
            entry.status = STATUS_NO_DATA
        return entry
