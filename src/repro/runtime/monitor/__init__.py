"""Live replication-health monitoring (docs/observability.md).

Three cooperating pieces, all owned by the :class:`~repro.core.Ecosystem`:

- :class:`LagMonitor` (``eco.monitor``) — per publisher→subscriber link
  lag/dwell windows, SLO evaluation, ``eco.monitor.health()``;
- :class:`FlightRecorder` (``eco.recorder``) — bounded rings of
  completed traces and structured events; anomalies dump JSONL;
- the exposition layer — :func:`to_prometheus` / :func:`to_json` over
  the metrics registry, and the ``python -m repro watch`` console.
"""

from repro.runtime.monitor.export import (
    mangle,
    parse_prometheus,
    to_json,
    to_prometheus,
)
from repro.runtime.monitor.lag import (
    HealthReport,
    LagMonitor,
    LinkHealth,
    LinkSLO,
    SlidingWindow,
)
from repro.runtime.monitor.recorder import (
    FlightRecorder,
    RecorderEvent,
    load_dump,
)

__all__ = [
    "FlightRecorder",
    "HealthReport",
    "LagMonitor",
    "LinkHealth",
    "LinkSLO",
    "RecorderEvent",
    "SlidingWindow",
    "load_dump",
    "mangle",
    "parse_prometheus",
    "to_json",
    "to_prometheus",
]
