"""Live replication-health monitoring (docs/observability.md).

Three cooperating pieces, all owned by the :class:`~repro.core.Ecosystem`:

- :class:`LagMonitor` (``eco.monitor``) — per publisher→subscriber link
  lag/dwell windows, SLO evaluation, ``eco.monitor.health()``;
- :class:`FlightRecorder` (``eco.recorder``) — bounded rings of
  completed traces and structured events; anomalies dump JSONL;
- the exposition layer — :func:`to_prometheus` / :func:`to_json` over
  the metrics registry, and the ``python -m repro watch`` console;
- :class:`ClusterPlane` (``eco.cluster``, installed by the shard
  runtime) — the federation layer: cross-shard trace assembly, merged
  metrics/health with ``shard`` labels, correlated incident dumps.
"""

from repro.runtime.monitor.cluster import (
    ClusterPlane,
    assemble_trace,
    cluster_quiesce,
    format_assembled_trace,
    shard_service,
)
from repro.runtime.monitor.export import (
    escape_label_value,
    format_labels,
    mangle,
    parse_prometheus,
    to_json,
    to_prometheus,
    unescape_label_value,
)
from repro.runtime.monitor.lag import (
    HealthReport,
    LagMonitor,
    LinkHealth,
    LinkSLO,
    SlidingWindow,
)
from repro.runtime.monitor.recorder import (
    FlightRecorder,
    RecorderEvent,
    load_dump,
)

__all__ = [
    "ClusterPlane",
    "FlightRecorder",
    "HealthReport",
    "LagMonitor",
    "LinkHealth",
    "LinkSLO",
    "RecorderEvent",
    "SlidingWindow",
    "assemble_trace",
    "cluster_quiesce",
    "escape_label_value",
    "format_assembled_trace",
    "format_labels",
    "load_dump",
    "mangle",
    "parse_prometheus",
    "shard_service",
    "to_json",
    "to_prometheus",
    "unescape_label_value",
]
