"""Execution/measurement runtime: the central metrics registry, per-message
tracing, threaded worker pools and the discrete-event simulator used for
the scaling experiments."""

from repro.runtime.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    ThroughputMeter,
    Timer,
)
from repro.runtime.tracing import Span, Trace, Tracer, format_trace

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "ThroughputMeter",
    "Span",
    "Trace",
    "Tracer",
    "format_trace",
]
