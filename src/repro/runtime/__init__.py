"""Execution/measurement runtime: the central metrics registry, per-message
tracing, the replication-health monitor (lag SLOs, flight recorder,
exposition), threaded worker pools and the discrete-event simulator used
for the scaling experiments."""

from repro.runtime.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    ThroughputMeter,
    Timer,
)
from repro.runtime.monitor import (
    FlightRecorder,
    HealthReport,
    LagMonitor,
    LinkHealth,
    LinkSLO,
    RecorderEvent,
    load_dump,
    parse_prometheus,
    to_json,
    to_prometheus,
)
from repro.runtime.tracing import (
    Span,
    Trace,
    Tracer,
    activate_trace,
    current_trace,
    format_trace,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "HealthReport",
    "Histogram",
    "LagMonitor",
    "LinkHealth",
    "LinkSLO",
    "MetricsRegistry",
    "RecorderEvent",
    "Span",
    "Timer",
    "ThroughputMeter",
    "Trace",
    "Tracer",
    "activate_trace",
    "current_trace",
    "format_trace",
    "load_dump",
    "parse_prometheus",
    "to_json",
    "to_prometheus",
]
