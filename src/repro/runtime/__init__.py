"""Execution/measurement runtime: metrics, threaded worker pools and the
discrete-event simulator used for the scaling experiments."""

from repro.runtime.metrics import Histogram, ThroughputMeter, Timer

__all__ = ["Histogram", "Timer", "ThroughputMeter"]
