"""Measurement primitives and the central metrics registry.

Every counter the pipeline used to keep ad hoc on publisher, subscriber,
broker and worker objects lives in a :class:`MetricsRegistry` now —
hierarchically named (``publisher.<app>.published``, ``broker.routed``,
``subscriber.<app>.dep_wait``), thread-safe, and exported wholesale via
:meth:`MetricsRegistry.snapshot` for benchmarks, dashboards and the
``python -m repro metrics`` CLI. See docs/observability.md for the
naming scheme.

Histograms are bounded: exact ``count``/``sum`` plus a fixed-size,
deterministically seeded reservoir (Vitter's Algorithm R) for the
percentile view, so an always-on production histogram never grows
without limit. Slow observations above a configurable threshold attach
an *exemplar* — the id of the trace active on the recording thread — so
a bad percentile links directly to one replayable trace
(docs/observability.md, "Replication-health monitoring").
"""

from __future__ import annotations

import math
import random
import threading
import zlib
from collections import deque
from typing import Any, Dict, List, Optional, Union

from repro.clock import Clock, DEFAULT_CLOCK
from repro.runtime.tracing import current_trace, trace_now

#: Reservoir capacity: percentiles stay exact below this many samples
#: and carry only reservoir error above it.
DEFAULT_RESERVOIR = 4096

#: Exemplars kept per histogram (newest win; one per bad percentile is
#: plenty for a postmortem link).
EXEMPLAR_CAPACITY = 8


def _seed_for(name: str) -> int:
    """Deterministic per-name reservoir seed (stable across processes,
    unlike builtin ``hash``)."""
    return zlib.crc32(name.encode("utf-8"))


class Counter:
    """A thread-safe monotonic counter.

    All pipeline counters route through here so concurrent publisher and
    subscriber-worker threads can never lose increments (the broker's
    ``dropped_messages``/``total_routed`` used to be bare ``+= 1``).
    """

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def increment(self, amount: int = 1) -> int:
        with self._lock:
            self._value += amount
            return self._value

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.value}>"


class Gauge:
    """A thread-safe point-in-time value (can go up and down).

    Flow control needs one for admission credits: a counter only grows,
    but credits drain and refill with queue depth.
    """

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float = 1.0) -> float:
        with self._lock:
            self._value += delta
            return self._value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.value}>"


class Histogram:
    """Collects samples; reports exact mean/total and reservoir percentiles.

    ``count`` and ``total()`` are exact however many samples arrive; the
    per-value store is a fixed-size reservoir (Algorithm R, seeded per
    instrument, so two runs of the same workload keep the same sample
    set). Percentiles use the nearest-rank method over the reservoir —
    exact until the reservoir fills, within reservoir error after. The
    sorted view is cached and invalidated on mutation, so a benchmark
    summary pass sorts once (O(n log n)) instead of once per percentile.

    Setting :attr:`exemplar_threshold` arms exemplar capture: a recorded
    value strictly above the threshold, observed while a trace is active
    on the thread (:func:`repro.runtime.tracing.activate_trace`), stores
    ``(value, trace_id, at)`` in a small ring.
    """

    def __init__(
        self,
        reservoir_size: int = DEFAULT_RESERVOIR,
        seed: int = 0,
    ) -> None:
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be >= 1")
        self._reservoir_size = reservoir_size
        self._seed = seed
        self._rng = random.Random(seed)
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None
        self._count = 0
        self._sum = 0.0
        self._lock = threading.Lock()
        #: Values strictly above this capture an exemplar (None = off).
        self.exemplar_threshold: Optional[float] = None
        self._exemplars: "deque[Dict[str, Any]]" = deque(maxlen=EXEMPLAR_CAPACITY)

    # -- recording ----------------------------------------------------------

    def _record_locked(self, value: float) -> None:
        self._count += 1
        self._sum += value
        if len(self._samples) < self._reservoir_size:
            self._samples.append(value)
            self._sorted = None
        else:
            # Algorithm R: the i-th sample replaces a reservoir slot with
            # probability reservoir_size / i.
            slot = self._rng.randrange(self._count)
            if slot < self._reservoir_size:
                self._samples[slot] = value
                self._sorted = None

    def record(self, value: float) -> None:
        threshold = self.exemplar_threshold
        exemplar: Optional[Dict[str, Any]] = None
        if threshold is not None and value > threshold:
            trace = current_trace()
            if trace is not None:
                exemplar = {
                    "value": value,
                    "trace_id": trace.trace_id,
                    "at": trace_now(),
                }
        with self._lock:
            self._record_locked(value)
            if exemplar is not None:
                self._exemplars.append(exemplar)

    def extend(self, values: List[float]) -> None:
        with self._lock:
            for value in values:
                self._record_locked(value)

    # -- reading ------------------------------------------------------------

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def mean(self) -> float:
        with self._lock:
            if not self._count:
                return 0.0
            return self._sum / self._count

    def percentile(self, p: float) -> float:
        with self._lock:
            if not self._samples:
                return 0.0
            if self._sorted is None:
                self._sorted = sorted(self._samples)
            rank = max(1, math.ceil(p / 100.0 * len(self._sorted)))
            return self._sorted[rank - 1]

    def total(self) -> float:
        with self._lock:
            return self._sum

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }

    def exemplars(self) -> List[Dict[str, Any]]:
        """Captured exemplars, oldest first."""
        with self._lock:
            return [dict(e) for e in self._exemplars]

    def reset(self) -> None:
        with self._lock:
            self._samples.clear()
            self._sorted = None
            self._count = 0
            self._sum = 0.0
            self._rng = random.Random(self._seed)
            self._exemplars.clear()


class MetricsRegistry:
    """Hierarchically named counters and histograms, one per ecosystem.

    Names are dot-separated (``layer.instance.metric``); requesting the
    same name twice returns the same instrument, so the publisher, the
    ``Service.stats()`` surface and the CLI all observe one value.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._gauges: Dict[str, Gauge] = {}

    def _check_kind(self, name: str, kind: str) -> None:
        """A name belongs to exactly one instrument kind."""
        for other_kind, table in (
            ("counter", self._counters),
            ("histogram", self._histograms),
            ("gauge", self._gauges),
        ):
            if other_kind != kind and name in table:
                raise ValueError(f"{name!r} is already a {other_kind}")

    def counter(self, name: str) -> Counter:
        with self._lock:
            self._check_kind(name, "counter")
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter()
            return counter

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            self._check_kind(name, "histogram")
            histogram = self._histograms.get(name)
            if histogram is None:
                # Per-name seed: reservoir downsampling is deterministic
                # run-to-run without correlating across instruments.
                histogram = self._histograms[name] = Histogram(seed=_seed_for(name))
            return histogram

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            self._check_kind(name, "gauge")
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge()
            return gauge

    def increment(self, name: str, amount: int = 1) -> None:
        self.counter(name).increment(amount)

    def value(self, name: str) -> int:
        """Current value of a counter (0 if it was never touched)."""
        with self._lock:
            counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def instruments(self) -> "tuple[Dict[str, Counter], Dict[str, Histogram]]":
        """(counters, histograms) shallow copies — the exposition layer
        (``repro.runtime.monitor.export``) needs the raw instruments, not
        just the summary snapshot. Gauges have their own accessor
        (:meth:`gauges`) so pre-gauge callers keep the 2-tuple shape."""
        with self._lock:
            return dict(self._counters), dict(self._histograms)

    def gauges(self) -> Dict[str, Gauge]:
        with self._lock:
            return dict(self._gauges)

    def snapshot(self, prefix: str = "") -> Dict[str, Union[int, float, Dict[str, float]]]:
        """Every instrument under ``prefix``, sorted by name. Counters
        and gauges export their value, histograms their summary dict."""
        with self._lock:
            counters = {n: c for n, c in self._counters.items() if n.startswith(prefix)}
            histograms = {
                n: h for n, h in self._histograms.items() if n.startswith(prefix)
            }
            gauges = {n: g for n, g in self._gauges.items() if n.startswith(prefix)}
        out: Dict[str, Union[int, float, Dict[str, float]]] = {}
        for name in sorted(set(counters) | set(histograms) | set(gauges)):
            if name in counters:
                out[name] = counters[name].value
            elif name in gauges:
                out[name] = gauges[name].value
            else:
                out[name] = histograms[name].summary()
        return out

    def exemplars(self, prefix: str = "") -> Dict[str, List[Dict[str, Any]]]:
        """Histogram name -> captured exemplars (only non-empty entries)."""
        with self._lock:
            histograms = {
                n: h for n, h in self._histograms.items() if n.startswith(prefix)
            }
        out: Dict[str, List[Dict[str, Any]]] = {}
        for name in sorted(histograms):
            exemplars = histograms[name].exemplars()
            if exemplars:
                out[name] = exemplars
        return out

    def reset(self) -> None:
        with self._lock:
            instruments = (
                list(self._counters.values())
                + list(self._histograms.values())
                + list(self._gauges.values())
            )
        for instrument in instruments:
            instrument.reset()


class Timer:
    """``with Timer(histogram):`` records elapsed seconds."""

    def __init__(self, histogram: Histogram, clock: Optional[Clock] = None) -> None:
        self.histogram = histogram
        self.clock = clock or DEFAULT_CLOCK
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = self.clock.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = self.clock.monotonic() - self._start
        self.histogram.record(self.elapsed)


class ThroughputMeter:
    """Counts events over a wall-clock (or virtual) window."""

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock = clock or DEFAULT_CLOCK
        self._count = 0
        self._lock = threading.Lock()
        self._started: Optional[float] = None
        self._stopped: Optional[float] = None

    def start(self) -> None:
        self._started = self.clock.monotonic()

    def mark(self, count: int = 1) -> None:
        with self._lock:
            self._count += count

    def stop(self) -> None:
        self._stopped = self.clock.monotonic()

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def per_second(self) -> float:
        if self._started is None:
            return 0.0
        end = self._stopped if self._stopped is not None else self.clock.monotonic()
        elapsed = end - self._started
        if elapsed <= 0:
            return 0.0
        return self.count / elapsed
