"""Lightweight measurement primitives used by the benchmark harness."""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional

from repro.clock import Clock, DEFAULT_CLOCK


class Histogram:
    """Collects samples; reports mean/percentiles.

    Percentiles use the nearest-rank method, adequate for the
    mean/99th-percentile tables of Fig 12(a).
    """

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        with self._lock:
            self._samples.append(value)

    def extend(self, values: List[float]) -> None:
        with self._lock:
            self._samples.extend(values)

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._samples)

    def mean(self) -> float:
        with self._lock:
            if not self._samples:
                return 0.0
            return sum(self._samples) / len(self._samples)

    def percentile(self, p: float) -> float:
        with self._lock:
            if not self._samples:
                return 0.0
            ordered = sorted(self._samples)
            rank = max(1, math.ceil(p / 100.0 * len(ordered)))
            return ordered[rank - 1]

    def total(self) -> float:
        with self._lock:
            return sum(self._samples)

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }

    def reset(self) -> None:
        with self._lock:
            self._samples.clear()


class Timer:
    """``with Timer(histogram):`` records elapsed seconds."""

    def __init__(self, histogram: Histogram, clock: Optional[Clock] = None) -> None:
        self.histogram = histogram
        self.clock = clock or DEFAULT_CLOCK
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = self.clock.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = self.clock.monotonic() - self._start
        self.histogram.record(self.elapsed)


class ThroughputMeter:
    """Counts events over a wall-clock (or virtual) window."""

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock = clock or DEFAULT_CLOCK
        self._count = 0
        self._lock = threading.Lock()
        self._started: Optional[float] = None
        self._stopped: Optional[float] = None

    def start(self) -> None:
        self._started = self.clock.monotonic()

    def mark(self, count: int = 1) -> None:
        with self._lock:
            self._count += count

    def stop(self) -> None:
        self._stopped = self.clock.monotonic()

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def per_second(self) -> float:
        if self._started is None:
            return 0.0
        end = self._stopped if self._stopped is not None else self.clock.monotonic()
        elapsed = end - self._started
        if elapsed <= 0:
            return 0.0
        return self.count / elapsed
