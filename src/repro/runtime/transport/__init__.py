"""Control-plane transport: the only sanctioned path between services.

Data-plane write messages ride the broker (``repro.broker``); everything
else a cross-service subsystem needs — bootstrap snapshots, Merkle
digest exchange, repair triggers, generation queries, watermark reads —
rides typed JSON envelopes through the per-ecosystem
:class:`ControlPlane`. Two transports answer them:

- :class:`LoopbackTransport` (default): in-process, but every envelope
  still JSON round-trips, so nothing non-serializable can leak across
  the service boundary;
- :class:`ProcessTransport`: the same envelopes over multiprocessing
  pipes, used by the :class:`ShardRunner` to place services into worker
  processes (docs/architecture.md, "Control plane & process shards").
"""

from repro.runtime.transport.control import (
    ControlPlane,
    LoopbackTransport,
    Transport,
    dispatch_request,
)
from repro.runtime.transport.envelopes import (
    CONTROL_WIRE_VERSION,
    ControlRequest,
    ControlResponse,
)
from repro.runtime.transport.handler import ControlPlaneHandler
from repro.runtime.transport.process import (
    PeerLink,
    ProcessTransport,
    make_dispatcher,
)

__all__ = [
    "CONTROL_WIRE_VERSION",
    "ControlPlane",
    "ControlPlaneHandler",
    "ControlRequest",
    "ControlResponse",
    "LoopbackTransport",
    "PeerLink",
    "ProcessTransport",
    "Transport",
    "dispatch_request",
    "make_dispatcher",
]
