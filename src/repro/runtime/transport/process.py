"""Cross-process transport over multiprocessing pipes.

A :class:`PeerLink` wraps one duplex pipe to a peer shard: a reader
thread demultiplexes incoming frames (control requests, control
responses, forwarded data-plane payloads), a send lock serializes
outgoing frames, and a pending-reply table matches responses to waiting
requesters. :class:`ProcessTransport` adapts a link to the
:class:`~repro.runtime.transport.control.Transport` interface.

Fault behaviour is structured, never a hang: a request that exceeds its
deadline raises :class:`TransportTimeout`; a request to (or in flight
toward) a dead peer raises :class:`TransportError`. Both paths emit a
flight-recorder event so postmortems see the control plane stall.

Frames are small tuples whose payloads are the JSON wire strings of the
envelopes / messages — the pipe carries text, not Python objects, so the
process boundary enforces the same seam the loopback transport does.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional

from repro.errors import TransportError, TransportTimeout
from repro.runtime.transport.envelopes import ControlRequest, ControlResponse

FRAME_CTRL_REQ = "ctrl_req"
FRAME_CTRL_RESP = "ctrl_resp"
FRAME_DATA = "data"
FRAME_STOP = "stop"


class _PendingReply:
    __slots__ = ("event", "response")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: Optional[ControlResponse] = None


class PeerLink:
    """One framed duplex connection to a peer process."""

    def __init__(
        self,
        conn: Any,
        dispatch: Callable[[str], str],
        data_sink: Optional[Callable[[str, str], None]] = None,
        recorder: Any = None,
        name: str = "peer",
    ) -> None:
        self.conn = conn
        self.name = name
        self.recorder = recorder
        #: request JSON -> response JSON, run on a per-request thread.
        self._dispatch = dispatch
        #: (subscriber_app, message JSON) -> enqueue locally.
        self._data_sink = data_sink
        self._send_lock = threading.Lock()
        self._pending: Dict[str, _PendingReply] = {}
        self._pending_lock = threading.Lock()
        self.dead = threading.Event()
        self.data_sent = 0
        self.data_received = 0
        self._reader: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "PeerLink":
        self._reader = threading.Thread(
            target=self._read_loop, name=f"peerlink-{self.name}", daemon=True
        )
        self._reader.start()
        return self

    def close(self) -> None:
        try:
            self.send((FRAME_STOP,))
        except TransportError:
            pass
        self._mark_dead()
        try:
            self.conn.close()
        except OSError:
            pass

    def _mark_dead(self) -> None:
        if self.dead.is_set():
            return
        self.dead.set()
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for slot in pending:
            slot.event.set()  # requesters wake up and see the dead flag

    # -- framing -------------------------------------------------------------

    def send(self, frame: tuple) -> None:
        if self.dead.is_set():
            raise TransportError(f"peer link {self.name!r} is dead")
        try:
            with self._send_lock:
                self.conn.send(frame)
        except (OSError, ValueError, BrokenPipeError) as exc:
            self._mark_dead()
            raise TransportError(
                f"peer link {self.name!r} broke while sending: {exc}"
            ) from exc

    def send_data(self, subscriber_app: str, payload: str) -> None:
        """Forward one data-plane wire payload to the peer's broker."""
        self.data_sent += 1
        self.send((FRAME_DATA, subscriber_app, payload))

    def _read_loop(self) -> None:
        while True:
            try:
                frame = self.conn.recv()
            except (EOFError, OSError, ValueError, TypeError):
                # TypeError: CPython's Connection raises it when the
                # handle is closed out from under a blocked recv.
                break
            kind = frame[0]
            if kind == FRAME_CTRL_REQ:
                # Serve off the reader thread: a handler may itself
                # issue a control request back to this peer (e.g. a
                # federated health_report whose SLO evaluation reads the
                # publisher's watermarks), and its response can only be
                # demultiplexed here — serving inline would deadlock.
                threading.Thread(
                    target=self._serve_request,
                    args=(frame[1],),
                    name=f"peerlink-{self.name}-serve",
                    daemon=True,
                ).start()
            elif kind == FRAME_CTRL_RESP:
                response = ControlResponse.from_json(frame[1])
                with self._pending_lock:
                    slot = self._pending.pop(response.request_id, None)
                if slot is not None:
                    slot.response = response
                    slot.event.set()
            elif kind == FRAME_DATA:
                self.data_received += 1
                if self._data_sink is not None:
                    self._data_sink(frame[1], frame[2])
            elif kind == FRAME_STOP:
                break
        self._mark_dead()

    def _serve_request(self, request_json: str) -> None:
        try:
            self.send((FRAME_CTRL_RESP, self._dispatch(request_json)))
        except TransportError:
            pass  # link died mid-serve; _mark_dead already ran

    # -- request/response ----------------------------------------------------

    def request(self, envelope: ControlRequest,
                timeout: float) -> ControlResponse:
        if self.dead.is_set():
            self._record("transport.peer_dead", envelope)
            raise TransportError(
                f"control request {envelope.op!r} to {envelope.service!r}: "
                f"peer link {self.name!r} is dead"
            )
        wire = envelope.to_json()  # raises TransportSerializationError early
        slot = _PendingReply()
        with self._pending_lock:
            self._pending[envelope.request_id] = slot
        try:
            self.send((FRAME_CTRL_REQ, wire))
        except TransportError:
            with self._pending_lock:
                self._pending.pop(envelope.request_id, None)
            self._record("transport.peer_dead", envelope)
            raise
        if not slot.event.wait(timeout):
            with self._pending_lock:
                self._pending.pop(envelope.request_id, None)
            self._record("transport.timeout", envelope, timeout=timeout)
            raise TransportTimeout(
                f"control request {envelope.op!r} to {envelope.service!r} "
                f"timed out after {timeout:.1f}s on link {self.name!r}"
            )
        if slot.response is None:  # woken by _mark_dead, not by a reply
            self._record("transport.peer_dead", envelope)
            raise TransportError(
                f"control request {envelope.op!r} to {envelope.service!r}: "
                f"peer link {self.name!r} died before replying"
            )
        return slot.response

    def _record(self, kind: str, envelope: ControlRequest, **data: Any) -> None:
        if self.recorder is not None:
            self.recorder.anomaly(
                kind,
                link=self.name,
                service=envelope.service,
                op=envelope.op,
                request_id=envelope.request_id,
                **data,
            )


class ProcessTransport:
    """Control-plane transport over one :class:`PeerLink`."""

    def __init__(self, link: PeerLink, default_timeout: float = 10.0) -> None:
        self.link = link
        self.default_timeout = default_timeout

    def request(self, envelope: ControlRequest,
                timeout: Optional[float] = None) -> ControlResponse:
        return self.link.request(
            envelope, timeout if timeout is not None else self.default_timeout
        )


def make_dispatcher(control_plane: Any) -> Callable[[str], str]:
    """The server half: request JSON in, response JSON out, run on a
    per-request serve thread against the local handler table."""
    from repro.runtime.tracing import trace_now
    from repro.runtime.transport.control import dispatch_request

    def dispatch(request_json: str) -> str:
        try:
            request = ControlRequest.from_json(request_json)
        except Exception as exc:
            return ControlResponse.failure(
                "unparsed", type(exc).__name__, str(exc)
            ).to_json()
        start = trace_now()
        response = dispatch_request(control_plane.handlers(), request)
        if request.trace:
            # The requester works under a sampled trace: record serving
            # this op as a span of that trace, on this shard's clock.
            cluster = getattr(
                getattr(control_plane, "ecosystem", None), "cluster", None
            )
            if cluster is not None:
                cluster.record_remote_span(
                    request.trace, f"control.{request.op}",
                    start, trace_now() - start,
                )
        try:
            return response.to_json()
        except Exception as exc:
            return ControlResponse.failure(
                request.request_id, type(exc).__name__, str(exc)
            ).to_json()

    return dispatch
