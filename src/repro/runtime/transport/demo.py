"""The 2-shard social-ecosystem demo (``python -m repro shard --demo``).

Six services across two worker processes; the broker forward seam and
the control plane are the only things crossing the process boundary:

- ``shard0`` owns ``social0`` (publisher), ``feed0`` (its local
  subscriber) and ``mirror1`` — a subscriber of ``social1``, which lives
  on the *other* shard;
- ``shard1`` owns ``social1``, ``feed1`` and ``mirror0`` (subscriber of
  ``social0``).

Both shards run the §6.3 social workload concurrently, so every publish
fans out to one local queue and one forwarded cross-shard queue. After
the mesh quiesces, each shard audits its subscribers — the mirrors'
Merkle digests come from the remote publisher over the control plane —
then deliberately loses one mirror row and heals it with a cross-process
targeted repair (§6.5 over a pipe).

Everything here is module-level so the spawn start method can pickle the
callables by reference.
"""

from __future__ import annotations

import os
from typing import Any, Dict

from repro.runtime.transport.shard import ShardRunner

#: shard -> services it owns. The mirrors are deliberately placed on the
#: opposite shard from their publisher: every mirror delivery and every
#: mirror audit/repair must cross the process boundary.
DEMO_PLACEMENT = {
    "shard0": ["social0", "feed0", "mirror1"],
    "shard1": ["social1", "feed1", "mirror0"],
}

#: Workload size knob (environment so it reaches the worker processes).
OPS_ENV = "REPRO_SHARD_OPS"


def _subscribe_social(ecosystem: Any, name: str, from_app: str) -> Any:
    """A subscriber service mirroring the social publisher's models."""
    from repro.databases.document import MongoLike
    from repro.orm import Field, Model

    service = ecosystem.service(name, database=MongoLike(f"{name}-db"))

    @service.model(subscribe={"from": from_app, "fields": ["name"]},
                   name="User")
    class User(Model):
        name = Field(str)

    @service.model(subscribe={"from": from_app,
                              "fields": ["author_id", "body"]},
                   name="Post")
    class Post(Model):
        body = Field(str)
        author_id = Field(int)

    @service.model(subscribe={"from": from_app,
                              "fields": ["post_id", "author_id", "body"]},
                   name="Comment")
    class Comment(Model):
        body = Field(str)
        post_id = Field(int)
        author_id = Field(int)

    return service


def build_demo_ecosystem() -> Any:
    """Every shard rebuilds this full topology, then narrows ownership."""
    from repro.core import Ecosystem
    from repro.workloads import build_social_publisher

    ecosystem = Ecosystem()
    build_social_publisher(ecosystem, name="social0")
    build_social_publisher(ecosystem, name="social1")
    _subscribe_social(ecosystem, "feed0", "social0")
    _subscribe_social(ecosystem, "feed1", "social1")
    _subscribe_social(ecosystem, "mirror0", "social0")
    _subscribe_social(ecosystem, "mirror1", "social1")
    return ecosystem


def _publisher_of(shard_name: str) -> str:
    return "social0" if shard_name == "shard0" else "social1"


def demo_scenario(ecosystem: Any, shard_name: str) -> Dict[str, Any]:
    """Run the social workload on this shard's publisher."""
    from repro.workloads import SocialWorkload

    operations = int(os.environ.get(OPS_ENV, "60"))
    name = _publisher_of(shard_name)
    service = ecosystem.local_service(name)
    workload = SocialWorkload(
        service,
        service.registry["User"],
        service.registry["Post"],
        service.registry["Comment"],
        users=5,
        seed=11 if shard_name == "shard0" else 23,
    )
    workload.run(operations)
    return {
        "publisher": name,
        "operations": operations,
        "posts": workload.posts_created,
        "comments": workload.comments_created,
        "published": service.publisher.messages_published,
    }


def demo_verify(ecosystem: Any, shard_name: str) -> Dict[str, Any]:
    """Audit every owned subscriber, then lose-and-repair one mirror row
    across the process boundary."""
    from repro.repair.auditor import ReplicationAuditor
    from repro.repair.repairer import repair_subscriber

    audits: Dict[str, Dict[str, Any]] = {}
    for service in ecosystem.local_services():
        if not service.subscriber.specs:
            continue
        report = ReplicationAuditor(service).audit()
        audits[service.name] = {
            "in_sync": report.in_sync,
            "divergent": report.divergent_total,
            "rows": {
                model: service.registry[model].count()
                for model in ("User", "Post", "Comment")
            },
        }

    # The mirror's publisher lives on the other shard: the audit above
    # already exchanged digests over the pipe; now lose a replicated row
    # locally and let targeted repair heal it — the repair trigger, the
    # re-published message and the verifying re-audit all cross shards.
    mirror_name = "mirror1" if shard_name == "shard0" else "mirror0"
    mirror = ecosystem.local_service(mirror_name)
    repair_summary: Dict[str, Any] = {"mirror": mirror_name, "ran": False}
    posts = mirror.registry["Post"].all()
    if posts:
        mirror.registry["Post"].__mapper__._do_delete(posts[0].id)
        result = repair_subscriber(mirror)
        repair_summary.update(
            ran=True,
            divergent=result.audit.divergent_total,
            objects_repaired=result.objects_repaired,
            verified_in_sync=result.verified_in_sync,
        )
    return {"audits": audits, "repair": repair_summary}


def run_demo(operations: int = 60, timeout: float = 60.0) -> Dict[str, Any]:
    """Build the runner and drive the full 2-shard demo."""
    os.environ[OPS_ENV] = str(operations)
    runner = ShardRunner(
        build_demo_ecosystem,
        DEMO_PLACEMENT,
        scenario=demo_scenario,
        verify=demo_verify,
        timeout=timeout,
    )
    return runner.run()


def shard_command(args: Any) -> int:
    """``python -m repro shard --demo [--operations N] [--timeout S]``."""
    if "--demo" not in args:
        print("the shard command currently only supports --demo")
        return 1

    def _flag(name: str, default: float) -> float:
        if name in args:
            return float(args[args.index(name) + 1])
        return default

    operations = int(_flag("--operations", 60))
    timeout = _flag("--timeout", 60.0)
    print(
        f"2-shard social ecosystem: {operations} operations per shard, "
        "mirrors subscribed across the process boundary"
    )
    outcome = run_demo(operations=operations, timeout=timeout)
    for shard_name in sorted(outcome["shards"]):
        shard = outcome["shards"][shard_name]
        scenario = shard.get("scenario") or {}
        verify = shard.get("verify") or {}
        stats = shard.get("stats") or {}
        print(f"{shard_name} (owns {', '.join(stats.get('owned', []))}):")
        print(
            f"  workload: {scenario.get('posts', 0)} posts + "
            f"{scenario.get('comments', 0)} comments -> "
            f"{scenario.get('published', 0)} messages from "
            f"{scenario.get('publisher', '?')}"
        )
        print(
            f"  seam: routed={stats.get('routed', 0)} "
            f"forwarded={stats.get('forwarded', 0)} "
            f"delivered={stats.get('delivered', 0)} "
            f"dropped={stats.get('dropped', 0)}"
        )
        for name, audit in sorted((verify.get("audits") or {}).items()):
            state = "in sync" if audit["in_sync"] \
                else f"{audit['divergent']} divergent"
            rows = audit["rows"]
            print(
                f"  audit {name}: {state} "
                f"(users={rows['User']} posts={rows['Post']} "
                f"comments={rows['Comment']})"
            )
        repair = verify.get("repair") or {}
        if repair.get("ran"):
            print(
                f"  repair {repair['mirror']}: {repair['divergent']} "
                f"divergent -> {repair['objects_repaired']} repaired, "
                f"verified={repair['verified_in_sync']}"
            )
    print(
        f"quiesced after {outcome['quiesce_polls']} polls in "
        f"{outcome['elapsed']:.2f}s"
    )
    if demo_healthy(outcome):
        print("OK: all audits digest-equal, cross-shard repairs verified")
        return 0
    print("FAILED: divergence or unverified repair — see above")
    return 1


def demo_healthy(outcome: Dict[str, Any]) -> bool:
    """Did the demo demonstrate what it claims? Every audit in sync and
    every cross-shard repair verified."""
    for shard in outcome["shards"].values():
        verify = shard.get("verify") or {}
        for audit in (verify.get("audits") or {}).values():
            if not audit["in_sync"]:
                return False
        repair = verify.get("repair") or {}
        if not repair.get("ran") or not repair.get("verified_in_sync"):
            return False
        if (shard.get("stats") or {}).get("dropped"):
            return False
    return True
