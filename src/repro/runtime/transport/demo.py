"""The 2-shard social-ecosystem demo (``python -m repro shard --demo``).

Six services across two worker processes; the broker forward seam and
the control plane are the only things crossing the process boundary:

- ``shard0`` owns ``social0`` (publisher), ``feed0`` (its local
  subscriber) and ``mirror1`` — a subscriber of ``social1``, which lives
  on the *other* shard;
- ``shard1`` owns ``social1``, ``feed1`` and ``mirror0`` (subscriber of
  ``social0``).

Both shards run the §6.3 social workload concurrently, so every publish
fans out to one local queue and one forwarded cross-shard queue. After
the mesh quiesces, each shard audits its subscribers — the mirrors'
Merkle digests come from the remote publisher over the control plane —
then deliberately loses one mirror row and heals it with a cross-process
targeted repair (§6.5 over a pipe).

Everything here is module-level so the spawn start method can pickle the
callables by reference.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

from repro.runtime.transport.shard import ShardRunner

#: shard -> services it owns. The mirrors are deliberately placed on the
#: opposite shard from their publisher: every mirror delivery and every
#: mirror audit/repair must cross the process boundary.
DEMO_PLACEMENT = {
    "shard0": ["social0", "feed0", "mirror1"],
    "shard1": ["social1", "feed1", "mirror0"],
}

#: Workload size knob (environment so it reaches the worker processes).
OPS_ENV = "REPRO_SHARD_OPS"

#: Trace sample rate for the demo shards ("1.0" = every message carries
#: its trace across the wire; unset/0 = tracing off).
TRACE_ENV = "REPRO_SHARD_TRACE"

#: Name of the shard that injects an impossible SLO during verify (the
#: correlated-postmortem demo: its breach dump pulls every peer's too).
BREACH_ENV = "REPRO_SHARD_BREACH"


def _subscribe_social(ecosystem: Any, name: str, from_app: str) -> Any:
    """A subscriber service mirroring the social publisher's models."""
    from repro.databases.document import MongoLike
    from repro.orm import Field, Model

    service = ecosystem.service(name, database=MongoLike(f"{name}-db"))

    @service.model(subscribe={"from": from_app, "fields": ["name"]},
                   name="User")
    class User(Model):
        name = Field(str)

    @service.model(subscribe={"from": from_app,
                              "fields": ["author_id", "body"]},
                   name="Post")
    class Post(Model):
        body = Field(str)
        author_id = Field(int)

    @service.model(subscribe={"from": from_app,
                              "fields": ["post_id", "author_id", "body"]},
                   name="Comment")
    class Comment(Model):
        body = Field(str)
        post_id = Field(int)
        author_id = Field(int)

    return service


def build_demo_ecosystem() -> Any:
    """Every shard rebuilds this full topology, then narrows ownership."""
    from repro.core import Ecosystem
    from repro.workloads import build_social_publisher

    ecosystem = Ecosystem()
    build_social_publisher(ecosystem, name="social0")
    build_social_publisher(ecosystem, name="social1")
    _subscribe_social(ecosystem, "feed0", "social0")
    _subscribe_social(ecosystem, "feed1", "social1")
    _subscribe_social(ecosystem, "mirror0", "social0")
    _subscribe_social(ecosystem, "mirror1", "social1")
    sample_rate = float(os.environ.get(TRACE_ENV, "0") or 0.0)
    if sample_rate > 0.0:
        ecosystem.enable_tracing(sample_rate=sample_rate)
    return ecosystem


def _publisher_of(shard_name: str) -> str:
    return "social0" if shard_name == "shard0" else "social1"


def demo_scenario(ecosystem: Any, shard_name: str) -> Dict[str, Any]:
    """Run the social workload on this shard's publisher."""
    from repro.workloads import SocialWorkload

    operations = int(os.environ.get(OPS_ENV, "60"))
    name = _publisher_of(shard_name)
    service = ecosystem.local_service(name)
    workload = SocialWorkload(
        service,
        service.registry["User"],
        service.registry["Post"],
        service.registry["Comment"],
        users=5,
        seed=11 if shard_name == "shard0" else 23,
    )
    workload.run(operations)
    return {
        "publisher": name,
        "operations": operations,
        "posts": workload.posts_created,
        "comments": workload.comments_created,
        "published": service.publisher.messages_published,
    }


def inject_lag_breach(ecosystem: Any) -> Dict[str, Any]:
    """Pin an impossible SLO on a link this shard publishes to, push a
    few real writes through it, and evaluate: the guaranteed
    ``slo.breach`` anomaly drives the flight recorder's auto-dump, whose
    incident sink broadcasts the incident id to every peer shard (the
    correlated-postmortem path, end to end)."""
    from repro.runtime.monitor import LinkSLO

    links = ecosystem.monitor.links()
    if not links:
        return {"injected": False}
    # Prefer the cross-shard link (publisher on another shard): the
    # postmortem question is then "what was the *other* process doing".
    owned = ecosystem.owned_services or set()
    publisher, subscriber = next(
        ((pub, sub) for pub, sub in links if pub not in owned), links[0]
    )
    ecosystem.monitor.set_slo(
        publisher, subscriber, LinkSLO(p99_lag=0.0, over_budget=0.001)
    )
    # set_slo resets the lag window, so feed it post-SLO samples the way
    # the apply path would — every one of them over the 0-second budget.
    window = ecosystem.monitor._window_for(publisher, subscriber)
    for _ in range(8):
        window.record(0.5)
    report = ecosystem.monitor.health()
    entry = report.link(publisher, subscriber)
    return {
        "injected": True,
        "link": [publisher, subscriber],
        "breached": bool(entry is not None and entry.breached),
        "dumps": list(ecosystem.recorder.dumps),
    }


def demo_verify(ecosystem: Any, shard_name: str) -> Dict[str, Any]:
    """Audit every owned subscriber, then lose-and-repair one mirror row
    across the process boundary."""
    from repro.repair.auditor import ReplicationAuditor
    from repro.repair.repairer import repair_subscriber

    breach: Optional[Dict[str, Any]] = None
    if os.environ.get(BREACH_ENV) == shard_name:
        breach = inject_lag_breach(ecosystem)

    audits: Dict[str, Dict[str, Any]] = {}
    for service in ecosystem.local_services():
        if not service.subscriber.specs:
            continue
        report = ReplicationAuditor(service).audit()
        audits[service.name] = {
            "in_sync": report.in_sync,
            "divergent": report.divergent_total,
            "rows": {
                model: service.registry[model].count()
                for model in ("User", "Post", "Comment")
            },
        }

    # The mirror's publisher lives on the other shard: the audit above
    # already exchanged digests over the pipe; now lose a replicated row
    # locally and let targeted repair heal it — the repair trigger, the
    # re-published message and the verifying re-audit all cross shards.
    mirror_name = "mirror1" if shard_name == "shard0" else "mirror0"
    mirror = ecosystem.local_service(mirror_name)
    repair_summary: Dict[str, Any] = {"mirror": mirror_name, "ran": False}
    posts = mirror.registry["Post"].all()
    if posts:
        mirror.registry["Post"].__mapper__._do_delete(posts[0].id)
        result = repair_subscriber(mirror)
        repair_summary.update(
            ran=True,
            divergent=result.audit.divergent_total,
            objects_repaired=result.objects_repaired,
            verified_in_sync=result.verified_in_sync,
        )
    out: Dict[str, Any] = {"audits": audits, "repair": repair_summary}
    if breach is not None:
        out["breach"] = breach
    return out


def _set_env(name: str, value: Optional[str]) -> None:
    if value is None:
        os.environ.pop(name, None)
    else:
        os.environ[name] = value


def run_demo(
    operations: int = 60,
    timeout: float = 60.0,
    trace_sample: Optional[float] = None,
    breach_shard: Optional[str] = None,
    incident_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Build the runner and drive the full 2-shard demo."""
    os.environ[OPS_ENV] = str(operations)
    _set_env(TRACE_ENV, None if trace_sample is None else str(trace_sample))
    _set_env(BREACH_ENV, breach_shard)
    try:
        runner = ShardRunner(
            build_demo_ecosystem,
            DEMO_PLACEMENT,
            scenario=demo_scenario,
            verify=demo_verify,
            timeout=timeout,
            incident_dir=incident_dir,
        )
        return runner.run()
    finally:
        _set_env(TRACE_ENV, None)
        _set_env(BREACH_ENV, None)


def run_trace_demo(
    uid: Optional[str] = None,
    operations: int = 40,
    timeout: float = 60.0,
) -> Optional[Dict[str, Any]]:
    """Run the 2-shard demo with 100% sampling and fetch one assembled
    cross-shard trace (the requested ``uid``, else the first uid that
    both shards hold spans for). Returns the assembled dict, or None
    when no trace matched."""
    os.environ[OPS_ENV] = str(operations)
    _set_env(TRACE_ENV, "1.0")
    runner = ShardRunner(
        build_demo_ecosystem,
        DEMO_PLACEMENT,
        scenario=demo_scenario,
        timeout=timeout,
    )
    try:
        runner.start()
        runner.run_scenarios()
        runner.quiesce()
        if uid is None:
            report = runner.cluster_request("trace_ids")
            holders: Dict[str, set] = {}
            for shard, result in report["shards"].items():
                for trace_id in result["ids"]:
                    holders.setdefault(trace_id, set()).add(shard)
            cross = sorted(t for t, s in holders.items() if len(s) >= 2)
            uid = cross[0] if cross else min(holders, default=None)
        assembled = (
            runner.cluster_request("trace_fetch", uid=uid)
            if uid is not None else None
        )
        runner.finish()
        return assembled
    finally:
        _set_env(TRACE_ENV, None)
        runner.close()


def trace_command(args: Any) -> int:
    """``python -m repro trace [<uid>] [--operations N] [--timeout S]``.

    Drives the 2-shard demo with every message sampled, assembles the
    requested (or first cross-shard) trace from both OS processes, and
    prints it with normalized timestamps, per-hop transit latency and
    the critical path. Exit 0 iff spans from at least two shards landed
    in one assembled trace."""
    from repro.runtime.monitor.cluster import format_assembled_trace

    uid = None
    skip = False
    for arg in args:
        if skip:
            skip = False
            continue
        if arg.startswith("--"):
            skip = True  # every flag of this command takes a value
            continue
        uid = arg
        break

    def _flag(name: str, default: float) -> float:
        if name in args:
            return float(args[args.index(name) + 1])
        return default

    operations = int(_flag("--operations", 40))
    timeout = _flag("--timeout", 60.0)
    assembled = run_trace_demo(uid=uid, operations=operations,
                               timeout=timeout)
    if assembled is None:
        print("no sampled traces were recorded by either shard")
        return 1
    for line in format_assembled_trace(assembled):
        print(line)
    if assembled["found"] and len(assembled["shards"]) >= 2:
        return 0
    print("FAILED: expected spans from at least two shards")
    return 1


def shard_command(args: Any) -> int:
    """``python -m repro shard --demo [--operations N] [--timeout S]``."""
    if "--demo" not in args:
        print("the shard command currently only supports --demo")
        return 1

    def _flag(name: str, default: float) -> float:
        if name in args:
            return float(args[args.index(name) + 1])
        return default

    operations = int(_flag("--operations", 60))
    timeout = _flag("--timeout", 60.0)
    print(
        f"2-shard social ecosystem: {operations} operations per shard, "
        "mirrors subscribed across the process boundary"
    )
    outcome = run_demo(operations=operations, timeout=timeout)
    for shard_name in sorted(outcome["shards"]):
        shard = outcome["shards"][shard_name]
        scenario = shard.get("scenario") or {}
        verify = shard.get("verify") or {}
        stats = shard.get("stats") or {}
        print(f"{shard_name} (owns {', '.join(stats.get('owned', []))}):")
        print(
            f"  workload: {scenario.get('posts', 0)} posts + "
            f"{scenario.get('comments', 0)} comments -> "
            f"{scenario.get('published', 0)} messages from "
            f"{scenario.get('publisher', '?')}"
        )
        print(
            f"  seam: routed={stats.get('routed', 0)} "
            f"forwarded={stats.get('forwarded', 0)} "
            f"delivered={stats.get('delivered', 0)} "
            f"dropped={stats.get('dropped', 0)}"
        )
        for name, audit in sorted((verify.get("audits") or {}).items()):
            state = "in sync" if audit["in_sync"] \
                else f"{audit['divergent']} divergent"
            rows = audit["rows"]
            print(
                f"  audit {name}: {state} "
                f"(users={rows['User']} posts={rows['Post']} "
                f"comments={rows['Comment']})"
            )
        repair = verify.get("repair") or {}
        if repair.get("ran"):
            print(
                f"  repair {repair['mirror']}: {repair['divergent']} "
                f"divergent -> {repair['objects_repaired']} repaired, "
                f"verified={repair['verified_in_sync']}"
            )
    print(
        f"quiesced after {outcome['quiesce_polls']} polls in "
        f"{outcome['elapsed']:.2f}s"
    )
    if demo_healthy(outcome):
        print("OK: all audits digest-equal, cross-shard repairs verified")
        return 0
    print("FAILED: divergence or unverified repair — see above")
    return 1


def demo_healthy(outcome: Dict[str, Any]) -> bool:
    """Did the demo demonstrate what it claims? Every audit in sync and
    every cross-shard repair verified."""
    for shard in outcome["shards"].values():
        verify = shard.get("verify") or {}
        for audit in (verify.get("audits") or {}).values():
            if not audit["in_sync"]:
                return False
        repair = verify.get("repair") or {}
        if not repair.get("ran") or not repair.get("verified_in_sync"):
            return False
        if (shard.get("stats") or {}).get("dropped"):
            return False
    return True
