"""The ControlPlane: routing of control requests + the typed client API.

One ``ControlPlane`` per ecosystem (``eco.control``). Services register a
:class:`ControlPlaneHandler` at creation; cross-service subsystems issue
requests through the typed helpers below and never touch the peer's
``Service`` object. Requests to a locally-hosted service go through the
:class:`LoopbackTransport`, which still JSON round-trips every envelope —
the in-process fast path offers exactly the same (and only the same)
information a process boundary would. In a sharded run the
:class:`~repro.runtime.transport.shard.ShardRunner` adds a
:class:`~repro.runtime.transport.process.ProcessTransport` route per
remote service and the same call sites transparently cross processes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import ControlPlaneError
from repro.runtime.tracing import current_trace, process_shard
from repro.runtime.transport.envelopes import ControlRequest, ControlResponse
from repro.runtime.transport.handler import ControlPlaneHandler

#: Error codes a typed helper may translate into a soft ``None`` result.
UNKNOWN_SERVICE = "UnknownService"


def dispatch_request(
    handlers: Dict[str, ControlPlaneHandler], request: ControlRequest
) -> ControlResponse:
    """Route one deserialized request to its service handler.

    Shared by the loopback transport and the process-shard pipe server so
    both boundaries answer identically.
    """
    handler = handlers.get(request.service)
    if handler is None:
        return ControlResponse.failure(
            request.request_id,
            UNKNOWN_SERVICE,
            f"no service {request.service!r} behind this control plane",
        )
    return handler.handle(request)


class Transport:
    """Carries one serialized request to a peer and returns its response."""

    def request(self, envelope: ControlRequest,
                timeout: Optional[float] = None) -> ControlResponse:
        raise NotImplementedError


class LoopbackTransport(Transport):
    """In-process transport that still pays the wire format.

    Every request and response is serialized to JSON and parsed back, so
    non-serializable state can never leak between co-hosted services —
    code that works over loopback works unchanged over a process pipe.
    """

    def __init__(self, handlers: Dict[str, ControlPlaneHandler]) -> None:
        self._handlers = handlers

    def request(self, envelope: ControlRequest,
                timeout: Optional[float] = None) -> ControlResponse:
        received = ControlRequest.from_json(envelope.to_json())
        response = dispatch_request(self._handlers, received)
        return ControlResponse.from_json(response.to_json())


class ControlPlane:
    """Per-ecosystem control-plane router and typed client."""

    def __init__(self, ecosystem: Any = None,
                 default_timeout: float = 10.0) -> None:
        self.ecosystem = ecosystem
        self.default_timeout = default_timeout
        self._handlers: Dict[str, ControlPlaneHandler] = {}
        self._routes: Dict[str, Transport] = {}
        self._loopback = LoopbackTransport(self._handlers)

    # -- wiring --------------------------------------------------------------

    def register_service(self, service: Any) -> ControlPlaneHandler:
        handler = ControlPlaneHandler(service)
        self.register_handler(service.name, handler)
        return handler

    def register_handler(self, name: str, handler: Any) -> None:
        """Register a non-service handler (anything with a ``handle``
        method taking a :class:`ControlRequest`) under ``name`` — the
        cluster observability plane registers per-shard pseudo-services
        (``_shard:<name>``) this way."""
        self._handlers[name] = handler

    def add_route(self, service_name: str, transport: Transport) -> None:
        """Answer requests for ``service_name`` via ``transport`` instead
        of a local handler (the service lives in another process)."""
        self._routes[service_name] = transport

    def known(self, service_name: str) -> bool:
        """Whether this control plane can reach ``service_name`` at all."""
        return service_name in self._routes or service_name in self._handlers

    def handlers(self) -> Dict[str, ControlPlaneHandler]:
        """The local handler table (the pipe server dispatches into it)."""
        return self._handlers

    # -- the raw request primitive -------------------------------------------

    def request(self, service_name: str, op: str,
                timeout: Optional[float] = None, **params: Any) -> Dict[str, Any]:
        envelope = ControlRequest(service=service_name, op=op, params=params)
        active = current_trace()
        if active is not None and getattr(active, "trace_id", None):
            # Control work done on behalf of a sampled message joins its
            # trace: the serving side records a ``control.<op>`` span
            # under the same trace_id (cross-shard trace assembly).
            envelope.trace = {
                "trace_id": active.trace_id,
                "sampled": True,
                "parent": active.spans[-1].stage if active.spans else "",
                "origin": process_shard(),
            }
        transport = self._routes.get(service_name, self._loopback)
        response = transport.request(
            envelope, timeout if timeout is not None else self.default_timeout
        )
        if not response.ok:
            raise ControlPlaneError(
                f"control request {op!r} to {service_name!r} failed: "
                f"[{response.error_type}] {response.error_message}",
                error_type=response.error_type,
                service=service_name,
                op=op,
            )
        return response.result

    def _request_or_none(self, service_name: str, op: str,
                         **params: Any) -> Optional[Dict[str, Any]]:
        """Soft variant: an unknown service answers ``None`` (the pre-seam
        callers tolerated a missing publisher by skipping the work)."""
        try:
            return self.request(service_name, op, **params)
        except ControlPlaneError as exc:
            if exc.error_type == UNKNOWN_SERVICE:
                return None
            raise

    # -- typed client helpers -------------------------------------------------

    def ping(self, service_name: str) -> bool:
        result = self._request_or_none(service_name, "ping")
        return bool(result and result.get("pong"))

    def generation(self, service_name: str) -> int:
        return int(self.request(service_name, "generation")["generation"])

    def watermarks(self, service_name: str) -> Optional[Dict[str, int]]:
        """Publisher version-store snapshot, or None if unreachable."""
        result = self._request_or_none(service_name, "watermarks")
        return None if result is None else result["versions"]

    def outbox_lag(self, service_name: str) -> int:
        """Unpublished CDC outbox entries on the publisher (0 when the
        peer is unreachable, predates the op, or has no outbox)."""
        try:
            result = self._request_or_none(service_name, "outbox_lag")
        except ControlPlaneError:
            return 0
        return int(result["pending"]) if result else 0

    def bootstrap_snapshot(self, service_name: str) -> Dict[str, Any]:
        """{"versions": {...}, "generation": n} — bootstrap step 1 (§4.4)."""
        return self.request(service_name, "bootstrap_snapshot")

    def model_dump(self, service_name: str, model_name: str) -> Dict[str, Any]:
        """{"found", "operations", "ids"} — bootstrap step 2 bulk data."""
        return self.request(service_name, "model_dump", model=model_name)

    def model_digest(
        self,
        service_name: str,
        model_name: str,
        remote_fields: Optional[List[str]] = None,
        leaves: Optional[int] = None,
    ) -> Optional[Any]:
        """The publisher's :class:`~repro.repair.digest.ModelDigest` of one
        model (rebuilt from its wire form), or None when there is nothing
        to digest on that side."""
        from repro.repair.digest import DEFAULT_LEAVES, ModelDigest

        result = self._request_or_none(
            service_name,
            "model_digest",
            model=model_name,
            fields=remote_fields,
            leaves=leaves if leaves is not None else DEFAULT_LEAVES,
        )
        if result is None or not result.get("found"):
            return None
        return ModelDigest.from_dict(result["digest"])

    def model_schema(self, service_name: str,
                     model_name: str) -> Optional[Dict[str, Optional[str]]]:
        """Field -> python type *name* of a peer model, or None."""
        result = self._request_or_none(
            service_name, "model_schema", model=model_name
        )
        if result is None or not result.get("found"):
            return None
        return result["fields"]

    def publish_repairs(
        self,
        service_name: str,
        model_name: str,
        divergent_ids: List[Any],
        batch_size: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Ask the publisher to re-publish divergent objects as repair
        messages; returns {"ids", "messages_published", "deletes_published"}."""
        params: Dict[str, Any] = {"model": model_name, "ids": divergent_ids}
        if batch_size is not None:
            params["batch_size"] = batch_size
        return self.request(service_name, "publish_repairs", **params)
