"""Per-service control-plane handler.

Each :class:`~repro.core.api.Service` registers one handler with the
ecosystem's :class:`~repro.runtime.transport.control.ControlPlane`. The
handler is the *only* code allowed to touch the service's Python objects
on behalf of a peer — every cross-service subsystem (bootstrap, audit,
repair, migration, lag monitoring) reaches it through a serialized
:class:`ControlRequest`, never through the ``Service`` object itself.

Every op returns a JSON-serializable dict. Ops that look something up
(`model_dump`, `model_digest`, `model_schema`) answer ``found: False``
instead of erroring when the model has no local replica, mirroring the
pre-seam behaviour of the in-process callers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.runtime.transport.envelopes import ControlRequest, ControlResponse


class ControlPlaneHandler:
    """Answers control-plane requests against one local service."""

    def __init__(self, service: Any) -> None:
        self.service = service
        self._ops: Dict[str, Callable[[Dict[str, Any]], Dict[str, Any]]] = {
            "ping": self._op_ping,
            "generation": self._op_generation,
            "watermarks": self._op_watermarks,
            "bootstrap_snapshot": self._op_bootstrap_snapshot,
            "model_dump": self._op_model_dump,
            "model_digest": self._op_model_digest,
            "model_schema": self._op_model_schema,
            "publish_repairs": self._op_publish_repairs,
            "outbox_lag": self._op_outbox_lag,
        }

    def handle(self, request: ControlRequest) -> ControlResponse:
        op = self._ops.get(request.op)
        if op is None:
            return ControlResponse.failure(
                request.request_id,
                "UnknownOperation",
                f"service {self.service.name!r} has no op {request.op!r}",
            )
        try:
            return ControlResponse.success(request, op(request.params))
        except Exception as exc:  # structured error, never a raw traceback
            return ControlResponse.failure(
                request.request_id, type(exc).__name__, str(exc)
            )

    # -- ops -----------------------------------------------------------------

    def _op_ping(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return {"service": self.service.name, "pong": True}

    def _op_generation(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return {"generation": self.service.current_generation()}

    def _op_watermarks(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Publisher version-store snapshot: hashed_dep -> ops counter."""
        return {"versions": self.service.publisher_version_store.snapshot()}

    def _op_outbox_lag(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Unpublished CDC outbox entries on this publisher. The auditor
        folds this into in-transit lag: a committed raw write whose entry
        the poller has not tailed yet is late, not lost (docs/cdc.md)."""
        cdc = getattr(self.service.ecosystem, "cdc", None)
        pending = (
            cdc.outbox_pending(self.service.name) if cdc is not None else 0
        )
        return {"pending": pending}

    def _op_bootstrap_snapshot(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Bootstrap step 1 payload: counters plus the generation the
        subscriber must adopt (§4.4)."""
        return {
            "versions": self.service.publisher_version_store.snapshot(),
            "generation": self.service.current_generation(),
        }

    def _op_model_dump(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Bootstrap step 2 payload: every row of one published model,
        marshaled exactly as a publish would marshal it."""
        from repro.core.marshal import marshal_operation

        service = self.service
        model_cls = service.registry.get(params["model"])
        if model_cls is None or model_cls.__mapper__ is None:
            return {"found": False, "operations": [], "ids": []}
        fields = service.published_fields_for(model_cls)
        if fields is None or model_cls.__mapper__.db is None:
            return {"found": False, "operations": [], "ids": []}
        rows = model_cls.__mapper__._do_where({}, None, None)
        operations = [
            marshal_operation("update", model_cls, row, fields) for row in rows
        ]
        return {
            "found": True,
            "operations": operations,
            "ids": [row["id"] for row in rows],
        }

    def _op_model_digest(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Merkle digest of the authoritative replica of one model."""
        from repro.repair.digest import DEFAULT_LEAVES, publisher_model_digest

        digest = publisher_model_digest(
            self.service,
            params["model"],
            remote_fields=params.get("fields"),
            leaves=params.get("leaves", DEFAULT_LEAVES),
        )
        if digest is None:
            return {"found": False, "digest": None}
        return {"found": True, "digest": digest.to_dict()}

    def _op_model_schema(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Field -> python type name of one local model (replication-based
        migration uses it to shape the clone's fields, §6.5)."""
        model_cls = self.service.registry.get(params["model"])
        if model_cls is None:
            return {"found": False, "fields": {}}
        fields: Dict[str, Any] = {}
        for name, field in model_cls._fields.items():
            py_type = getattr(field, "py_type", None)
            fields[name] = getattr(py_type, "__name__", None)
        return {"found": True, "fields": fields}

    def _op_publish_repairs(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Repair trigger: re-publish the named divergent objects through
        this publisher's ordinary pipeline, flagged ``repair=True``."""
        from repro.repair.repairer import REPAIR_BATCH_SIZE, publish_repairs

        return publish_repairs(
            self.service,
            params["model"],
            params["ids"],
            batch_size=params.get("batch_size", REPAIR_BATCH_SIZE),
        )
