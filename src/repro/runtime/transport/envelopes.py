"""Typed, JSON-serializable control-plane envelopes.

The data plane (write messages) rides the broker; everything *else* a
service needs from a peer — bootstrap snapshots, Merkle digest exchange,
repair triggers, generation queries, publisher watermark reads — rides
these envelopes. Both directions are plain JSON end to end, so a request
can cross a process boundary unchanged and nothing non-serializable can
leak between services.

``CONTROL_WIRE_VERSION`` gates schema evolution the same way the data
plane's ``Message.wire_version`` does: a peer refuses an envelope from a
*newer* schema instead of misreading it.
"""

from __future__ import annotations

import itertools
import json
import threading
from typing import Any, Dict, Optional

from repro.errors import TransportError, TransportSerializationError

#: Bump when an envelope field changes meaning; receivers reject newer.
#: v2: requests may carry an optional ``trace`` context (trace_id,
#: sampled flag, parent span, origin shard) so control-plane work done
#: on behalf of a traced message joins its trace; v1 envelopes — which
#: simply omit it — are still accepted.
CONTROL_WIRE_VERSION = 2

_req_seq = itertools.count(1)
_req_lock = threading.Lock()


def _encode(payload: Dict[str, Any], what: str) -> str:
    try:
        return json.dumps(payload)
    except (TypeError, ValueError) as exc:
        raise TransportSerializationError(
            f"{what} is not JSON-serializable: {exc}"
        ) from exc


class ControlRequest:
    """One control-plane request addressed to a service by name."""

    def __init__(
        self,
        service: str,
        op: str,
        params: Optional[Dict[str, Any]] = None,
        request_id: Optional[str] = None,
        trace: Optional[Dict[str, Any]] = None,
    ) -> None:
        if request_id is None:
            with _req_lock:
                request_id = f"cp-{next(_req_seq)}"
        self.request_id = request_id
        self.service = service
        self.op = op
        self.params: Dict[str, Any] = dict(params or {})
        #: Optional trace context — {"trace_id", "sampled", "parent",
        #: "origin"} — when this request is issued on behalf of a sampled
        #: message (the server side records a ``control.<op>`` span).
        self.trace: Optional[Dict[str, Any]] = trace

    def to_json(self) -> str:
        payload: Dict[str, Any] = {
            "wire_version": CONTROL_WIRE_VERSION,
            "request_id": self.request_id,
            "service": self.service,
            "op": self.op,
            "params": self.params,
        }
        if self.trace:
            payload["trace"] = self.trace
        return _encode(
            payload, f"control request {self.op!r} to {self.service!r}"
        )

    @classmethod
    def from_json(cls, payload: str) -> "ControlRequest":
        data = json.loads(payload)
        version = data.get("wire_version", 1)
        if version > CONTROL_WIRE_VERSION:
            raise TransportError(
                f"control envelope wire_version {version} is newer than "
                f"supported {CONTROL_WIRE_VERSION}"
            )
        return cls(
            service=data["service"],
            op=data["op"],
            params=data.get("params"),
            request_id=data.get("request_id"),
            trace=data.get("trace"),
        )

    def __repr__(self) -> str:
        return (
            f"<ControlRequest {self.request_id} {self.op} -> {self.service}>"
        )


class ControlResponse:
    """The peer's answer: a JSON result, or a structured error."""

    def __init__(
        self,
        request_id: str,
        ok: bool,
        result: Optional[Dict[str, Any]] = None,
        error_type: str = "",
        error_message: str = "",
    ) -> None:
        self.request_id = request_id
        self.ok = ok
        self.result: Dict[str, Any] = dict(result or {})
        self.error_type = error_type
        self.error_message = error_message

    @classmethod
    def success(cls, request: ControlRequest,
                result: Optional[Dict[str, Any]]) -> "ControlResponse":
        return cls(request.request_id, ok=True, result=result)

    @classmethod
    def failure(cls, request_id: str, error_type: str,
                error_message: str) -> "ControlResponse":
        return cls(request_id, ok=False, error_type=error_type,
                   error_message=error_message)

    def to_json(self) -> str:
        return _encode(
            {
                "wire_version": CONTROL_WIRE_VERSION,
                "request_id": self.request_id,
                "ok": self.ok,
                "result": self.result,
                "error_type": self.error_type,
                "error_message": self.error_message,
            },
            "control response",
        )

    @classmethod
    def from_json(cls, payload: str) -> "ControlResponse":
        data = json.loads(payload)
        version = data.get("wire_version", 1)
        if version > CONTROL_WIRE_VERSION:
            raise TransportError(
                f"control envelope wire_version {version} is newer than "
                f"supported {CONTROL_WIRE_VERSION}"
            )
        return cls(
            request_id=data["request_id"],
            ok=data["ok"],
            result=data.get("result"),
            error_type=data.get("error_type", ""),
            error_message=data.get("error_message", ""),
        )

    def __repr__(self) -> str:
        state = "ok" if self.ok else f"error:{self.error_type}"
        return f"<ControlResponse {self.request_id} {state}>"
