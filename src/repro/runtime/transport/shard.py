"""The process-sharded runtime: services placed into worker processes.

Synapse's deployment story (§2, §5) is many independent OS processes
coupled *only* by the message fabric. :class:`ShardRunner` reproduces
that shape inside one host: every shard is a worker process hosting a
subset of the ecosystem's services, and the two sanctioned seams are the
only things that cross the boundary —

- data plane: the broker forwards wire payloads for queues owned by
  other shards (:meth:`~repro.broker.broker.Broker.attach_placement` /
  :meth:`~repro.broker.broker.Broker.deliver_remote`);
- control plane: each shard answers its peers' control requests over a
  :class:`~repro.runtime.transport.process.ProcessTransport`.

Every shard builds the *same* ecosystem from a shared builder function
(declarations are code, so each process can rebuild the full topology),
then narrows ``ecosystem.owned_services`` to its own placement. Nothing
else is shared: no sockets to a common interpreter, no shared memory —
the shards are real processes with their own GIL, which is the point.

The builder, scenario and verify callables must be module-level
functions (the spawn start method pickles them by reference).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import TransportError, TransportTimeout
from repro.runtime.transport.process import (
    PeerLink,
    ProcessTransport,
    make_dispatcher,
)

#: Consecutive stable all-idle polls required before the mesh counts as
#: quiescent (one poll can race a forwarded payload still in a pipe).
QUIESCENT_POLLS = 2


def _drain_local(ecosystem: Any) -> None:
    for service in ecosystem.local_services():
        service.subscriber.drain()


def _idle_state(ecosystem: Any, links: Dict[str, PeerLink]) -> Dict[str, int]:
    backlog = sum(ecosystem.broker.backlog().values())
    in_flight = sum(ecosystem.broker.in_flight().values())
    return {
        "idle": int(backlog == 0 and in_flight == 0),
        "sent": sum(link.data_sent for link in links.values()),
        "received": sum(link.data_received for link in links.values()),
    }


def _shard_main(
    shard_name: str,
    builder: Callable[[], Any],
    placement: Dict[str, List[str]],
    scenario: Optional[Callable[[Any, str], Dict[str, Any]]],
    verify: Optional[Callable[[Any, str], Dict[str, Any]]],
    command_conn: Any,
    peer_conns: Dict[str, Any],
    durability_dir: Optional[str] = None,
) -> None:
    """Worker-process entry point: build, wire the seams, serve commands."""
    try:
        ecosystem = builder()
        owned = set(placement[shard_name])
        ecosystem.owned_services = owned
        owner_of = {
            service_name: shard
            for shard, services in placement.items()
            for service_name in services
        }

        links: Dict[str, PeerLink] = {}
        for peer, conn in peer_conns.items():
            links[peer] = PeerLink(
                conn,
                dispatch=make_dispatcher(ecosystem.control),
                data_sink=ecosystem.broker.deliver_remote,
                recorder=ecosystem.recorder,
                name=f"{shard_name}->{peer}",
            ).start()
        for service_name, owner in owner_of.items():
            if owner != shard_name and owner in links:
                ecosystem.control.add_route(
                    service_name, ProcessTransport(links[owner])
                )
        ecosystem.broker.attach_placement(
            lambda sub: owner_of.get(sub, shard_name) == shard_name,
            lambda sub, payload: links[owner_of[sub]].send_data(sub, payload),
        )
        # Durability: each shard logs to its own WAL directory (the
        # crash unit is the process), and restores whatever a previous
        # incarnation of this shard left behind before accepting work.
        durability = None
        restored: Optional[Dict[str, Any]] = None
        if durability_dir is not None:
            shard_dir = os.path.join(durability_dir, shard_name)
            durability = ecosystem.enable_durability(data_dir=shard_dir)
            report = durability.restore()
            restored = {
                "snapshot_id": report.snapshot_id,
                "replayed": report.replayed,
                "requeued": report.requeued,
                "applied": report.applied,
                "unrecoverable": report.unrecoverable,
            }
    except Exception as exc:  # startup failure: report, don't hang the parent
        command_conn.send(("error", f"{type(exc).__name__}: {exc}"))
        return

    command_conn.send(("ready", shard_name))
    try:
        while True:
            frame = command_conn.recv()
            kind = frame[0]
            if kind == "run":
                result = scenario(ecosystem, shard_name) if scenario else {}
                _drain_local(ecosystem)
                command_conn.send(("scenario_done", result))
            elif kind == "idle?":
                _drain_local(ecosystem)
                command_conn.send(("idle", _idle_state(ecosystem, links)))
            elif kind == "verify":
                result = verify(ecosystem, shard_name) if verify else {}
                command_conn.send(("verified", result))
            elif kind == "finish":
                _drain_local(ecosystem)
                if durability is not None:
                    # Clean shutdown: checkpoint so the next incarnation
                    # restores from a snapshot instead of a full replay.
                    durability.snapshot()
                    durability.close()
                    durability = None
                command_conn.send(("result", {
                    "shard": shard_name,
                    "owned": sorted(owned),
                    "routed": ecosystem.broker.total_routed,
                    "dropped": ecosystem.broker.dropped_messages,
                    "forwarded": sum(l.data_sent for l in links.values()),
                    "delivered": sum(l.data_received for l in links.values()),
                    "anomalies": len(ecosystem.recorder.anomalies()),
                    "restored": restored,
                }))
                break
            else:
                command_conn.send(("error", f"unknown command {kind!r}"))
                break
    except (EOFError, OSError):
        pass  # parent went away; nothing left to answer
    except Exception as exc:
        try:
            command_conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except OSError:
            pass
    finally:
        for link in links.values():
            link.close()


class ShardRunner:
    """Place an ecosystem's services into worker processes and drive a
    scenario across them.

    ``placement`` maps shard name -> the service names it owns; every
    service of the built ecosystem must appear in exactly one shard.
    ``scenario(ecosystem, shard_name)`` runs concurrently on every shard
    (the per-shard workload); ``verify(ecosystem, shard_name)`` runs
    after the mesh quiesces (cross-shard audits ride the control plane).
    Both return JSON-ish dicts that :meth:`run` collects per shard.
    """

    def __init__(
        self,
        builder: Callable[[], Any],
        placement: Dict[str, List[str]],
        scenario: Optional[Callable[[Any, str], Dict[str, Any]]] = None,
        verify: Optional[Callable[[Any, str], Dict[str, Any]]] = None,
        timeout: float = 60.0,
        durability_dir: Optional[str] = None,
    ) -> None:
        if len(placement) < 1:
            raise ValueError("placement needs at least one shard")
        self.builder = builder
        self.placement = {name: list(services)
                          for name, services in placement.items()}
        self.scenario = scenario
        self.verify = verify
        self.timeout = timeout
        #: When set, each shard WALs to ``<durability_dir>/<shard>/`` and
        #: restores from it on startup (docs/durability.md).
        self.durability_dir = durability_dir
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            self._ctx = multiprocessing.get_context("spawn")

    # -- parent-side protocol ------------------------------------------------

    def _recv(self, conn: Any, shard: str, expected: str) -> Any:
        if not conn.poll(self.timeout):
            raise TransportTimeout(
                f"shard {shard!r} sent no {expected!r} within "
                f"{self.timeout:.0f}s"
            )
        try:
            frame = conn.recv()
        except EOFError as exc:
            raise TransportError(f"shard {shard!r} died") from exc
        if frame[0] == "error":
            raise TransportError(f"shard {shard!r} failed: {frame[1]}")
        if frame[0] != expected:
            raise TransportError(
                f"shard {shard!r} answered {frame[0]!r}, expected {expected!r}"
            )
        return frame[1] if len(frame) > 1 else None

    def _await_quiescent(self, conns: Dict[str, Any]) -> int:
        """Poll all shards until the mesh is drained: every shard idle and
        every forwarded payload accounted for, stable across consecutive
        polls (monotonic counters make sent==received mean empty pipes)."""
        deadline = time.monotonic() + self.timeout
        stable = 0
        last: Optional[Tuple[int, int]] = None
        polls = 0
        while time.monotonic() < deadline:
            polls += 1
            for conn in conns.values():
                conn.send(("idle?",))
            states = [self._recv(conn, shard, "idle")
                      for shard, conn in conns.items()]
            sent = sum(state["sent"] for state in states)
            received = sum(state["received"] for state in states)
            if all(state["idle"] for state in states) and sent == received:
                stable = stable + 1 if last == (sent, received) else 1
                last = (sent, received)
                if stable >= QUIESCENT_POLLS:
                    return polls
            else:
                stable, last = 0, None
            time.sleep(0.02)
        raise TransportTimeout(
            f"shard mesh did not quiesce within {self.timeout:.0f}s"
        )

    def run(self) -> Dict[str, Any]:
        """Start the shards, run the scenario everywhere, wait for the
        mesh to drain, verify, and collect per-shard results."""
        shards = sorted(self.placement)
        # Full mesh of pair pipes plus one command pipe per shard.
        peer_conns: Dict[str, Dict[str, Any]] = {name: {} for name in shards}
        for i, a in enumerate(shards):
            for b in shards[i + 1:]:
                end_a, end_b = self._ctx.Pipe()
                peer_conns[a][b] = end_a
                peer_conns[b][a] = end_b
        command: Dict[str, Any] = {}
        processes: Dict[str, Any] = {}
        for name in shards:
            parent_end, child_end = self._ctx.Pipe()
            command[name] = parent_end
            processes[name] = self._ctx.Process(
                target=_shard_main,
                name=f"shard-{name}",
                args=(name, self.builder, self.placement, self.scenario,
                      self.verify, child_end, peer_conns[name],
                      self.durability_dir),
            )
        started = time.monotonic()
        results: Dict[str, Any] = {name: {} for name in shards}
        try:
            for name in shards:
                processes[name].start()
            # The parent's copies of the pipe ends belong to the children.
            for name in shards:
                for conn in peer_conns[name].values():
                    conn.close()
            for name in shards:
                self._recv(command[name], name, "ready")
            for name in shards:
                command[name].send(("run",))
            for name in shards:
                results[name]["scenario"] = self._recv(
                    command[name], name, "scenario_done"
                )
            polls = self._await_quiescent(command)
            for name in shards:
                command[name].send(("verify",))
            for name in shards:
                results[name]["verify"] = self._recv(
                    command[name], name, "verified"
                )
            for name in shards:
                command[name].send(("finish",))
            for name in shards:
                results[name]["stats"] = self._recv(
                    command[name], name, "result"
                )
            for name in shards:
                processes[name].join(timeout=self.timeout)
        finally:
            for process in processes.values():
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5.0)
            for conn in command.values():
                conn.close()
        return {
            "shards": results,
            "quiesce_polls": polls,
            "elapsed": time.monotonic() - started,
        }
