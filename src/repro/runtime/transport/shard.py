"""The process-sharded runtime: services placed into worker processes.

Synapse's deployment story (§2, §5) is many independent OS processes
coupled *only* by the message fabric. :class:`ShardRunner` reproduces
that shape inside one host: every shard is a worker process hosting a
subset of the ecosystem's services, and the two sanctioned seams are the
only things that cross the boundary —

- data plane: the broker forwards wire payloads for queues owned by
  other shards (:meth:`~repro.broker.broker.Broker.attach_placement` /
  :meth:`~repro.broker.broker.Broker.deliver_remote`);
- control plane: each shard answers its peers' control requests over a
  :class:`~repro.runtime.transport.process.ProcessTransport`.

Every shard builds the *same* ecosystem from a shared builder function
(declarations are code, so each process can rebuild the full topology),
then narrows ``ecosystem.owned_services`` to its own placement. Nothing
else is shared: no sockets to a common interpreter, no shared memory —
the shards are real processes with their own GIL, which is the point.

Each worker also installs a
:class:`~repro.runtime.monitor.cluster.ClusterPlane`: the shard's name
is stamped on every span it records, a ``_shard:<name>`` pseudo-service
answers cluster federation ops (metrics/health/trace/flight-dump), and
— when ``incident_dir`` is set — anomaly dumps are broadcast so every
shard freezes its matching window into one incident directory. The
parent can reach the federation through :meth:`ShardRunner.
cluster_request`, which relays one op through the first shard.

The builder, scenario and verify callables must be module-level
functions (the spawn start method pickles them by reference).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Callable, Dict, List, Optional

from repro.errors import TransportError, TransportTimeout
from repro.runtime.monitor.cluster import (
    ClusterPlane,
    QUIESCENT_POLLS,
    cluster_quiesce,
    shard_service,
)
from repro.runtime.tracing import set_process_shard
from repro.runtime.transport.process import (
    PeerLink,
    ProcessTransport,
    make_dispatcher,
)

__all__ = [
    "QUIESCENT_POLLS",
    "ShardRunner",
]


def _drain_local(ecosystem: Any) -> None:
    for service in ecosystem.local_services():
        service.subscriber.drain()


def _shard_main(
    shard_name: str,
    builder: Callable[[], Any],
    placement: Dict[str, List[str]],
    scenario: Optional[Callable[[Any, str], Dict[str, Any]]],
    verify: Optional[Callable[[Any, str], Dict[str, Any]]],
    command_conn: Any,
    peer_conns: Dict[str, Any],
    durability_dir: Optional[str] = None,
    incident_dir: Optional[str] = None,
) -> None:
    """Worker-process entry point: build, wire the seams, serve commands."""
    try:
        set_process_shard(shard_name)
        ecosystem = builder()
        owned = set(placement[shard_name])
        ecosystem.owned_services = owned
        owner_of = {
            service_name: shard
            for shard, services in placement.items()
            for service_name in services
        }

        # The cluster observability plane is installed (handler first)
        # before any peer link starts: a fast peer may probe our clock
        # the moment its end of the pipe is live.
        links: Dict[str, PeerLink] = {}
        cluster = ClusterPlane(
            ecosystem,
            shard_name,
            peers=tuple(peer_conns),
            links=links,
            incident_root=(
                os.path.join(incident_dir, "incidents")
                if incident_dir is not None else None
            ),
        ).install()
        if incident_dir is not None and ecosystem.recorder.dump_dir is None:
            # Arm per-shard auto-dumps too (enable_durability respects an
            # already-set dump_dir, so ordering here is safe either way).
            ecosystem.recorder.dump_dir = os.path.join(incident_dir, shard_name)

        for peer, conn in peer_conns.items():
            links[peer] = PeerLink(
                conn,
                dispatch=make_dispatcher(ecosystem.control),
                data_sink=ecosystem.broker.deliver_remote,
                recorder=ecosystem.recorder,
                name=f"{shard_name}->{peer}",
            ).start()
        for service_name, owner in owner_of.items():
            if owner != shard_name and owner in links:
                ecosystem.control.add_route(
                    service_name, ProcessTransport(links[owner])
                )
        for peer in links:
            ecosystem.control.add_route(
                shard_service(peer), ProcessTransport(links[peer])
            )
        ecosystem.broker.attach_placement(
            lambda sub: owner_of.get(sub, shard_name) == shard_name,
            lambda sub, payload: links[owner_of[sub]].send_data(sub, payload),
        )
        # Durability: each shard logs to its own WAL directory (the
        # crash unit is the process), and restores whatever a previous
        # incarnation of this shard left behind before accepting work.
        durability = None
        restored: Optional[Dict[str, Any]] = None
        if durability_dir is not None:
            shard_dir = os.path.join(durability_dir, shard_name)
            durability = ecosystem.enable_durability(data_dir=shard_dir)
            report = durability.restore()
            restored = {
                "snapshot_id": report.snapshot_id,
                "replayed": report.replayed,
                "requeued": report.requeued,
                "applied": report.applied,
                "unrecoverable": report.unrecoverable,
            }
    except Exception as exc:  # startup failure: report, don't hang the parent
        command_conn.send(("error", f"{type(exc).__name__}: {exc}"))
        return

    command_conn.send(("ready", shard_name))
    try:
        while True:
            frame = command_conn.recv()
            kind = frame[0]
            if kind == "run":
                result = scenario(ecosystem, shard_name) if scenario else {}
                _drain_local(ecosystem)
                command_conn.send(("scenario_done", result))
            elif kind == "idle?":
                _drain_local(ecosystem)
                command_conn.send(("idle", cluster.local_idle_state()))
            elif kind == "quiesce":
                # Mesh-wide quiescence driven from inside this shard:
                # peers drain as part of answering health_report ops.
                quiesce_timeout = frame[1] if len(frame) > 1 else 30.0
                try:
                    polls = cluster_quiesce(ecosystem, timeout=quiesce_timeout)
                    command_conn.send(
                        ("quiesced", {"quiesced": True, "polls": polls})
                    )
                except TransportTimeout:
                    command_conn.send(
                        ("quiesced", {"quiesced": False, "polls": -1})
                    )
            elif kind == "cluster":
                # A federated observability op relayed for the parent
                # CLI; failures answer structured, the shard stays up.
                op, params = frame[1], frame[2] if len(frame) > 2 else {}
                try:
                    result = cluster.serve(op, params)
                except Exception as exc:
                    result = {"error": f"{type(exc).__name__}: {exc}"}
                command_conn.send(("cluster_result", result))
            elif kind == "verify":
                result = verify(ecosystem, shard_name) if verify else {}
                command_conn.send(("verified", result))
            elif kind == "finish":
                _drain_local(ecosystem)
                if durability is not None:
                    # Clean shutdown: checkpoint so the next incarnation
                    # restores from a snapshot instead of a full replay.
                    durability.snapshot()
                    durability.close()
                    durability = None
                command_conn.send(("result", {
                    "shard": shard_name,
                    "owned": sorted(owned),
                    "routed": ecosystem.broker.total_routed,
                    "dropped": ecosystem.broker.dropped_messages,
                    "forwarded": sum(l.data_sent for l in links.values()),
                    "delivered": sum(l.data_received for l in links.values()),
                    "anomalies": len(ecosystem.recorder.anomalies()),
                    "restored": restored,
                }))
                break
            else:
                command_conn.send(("error", f"unknown command {kind!r}"))
                break
    except (EOFError, OSError):
        pass  # parent went away; nothing left to answer
    except Exception as exc:
        try:
            command_conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except OSError:
            pass
    finally:
        for link in links.values():
            link.close()


class ShardRunner:
    """Place an ecosystem's services into worker processes and drive a
    scenario across them.

    ``placement`` maps shard name -> the service names it owns; every
    service of the built ecosystem must appear in exactly one shard.
    ``scenario(ecosystem, shard_name)`` runs concurrently on every shard
    (the per-shard workload); ``verify(ecosystem, shard_name)`` runs
    after the mesh quiesces (cross-shard audits ride the control plane).
    Both return JSON-ish dicts that :meth:`run` collects per shard.

    :meth:`run` drives the whole lifecycle in one call; the phase
    methods (:meth:`start`, :meth:`run_scenarios`, :meth:`quiesce`,
    :meth:`run_verify`, :meth:`finish`, :meth:`close`) are also public
    so interactive drivers — ``watch --cluster`` rounds, the ``trace``
    CLI — can interleave workload rounds with federation pulls.
    """

    def __init__(
        self,
        builder: Callable[[], Any],
        placement: Dict[str, List[str]],
        scenario: Optional[Callable[[Any, str], Dict[str, Any]]] = None,
        verify: Optional[Callable[[Any, str], Dict[str, Any]]] = None,
        timeout: float = 60.0,
        durability_dir: Optional[str] = None,
        incident_dir: Optional[str] = None,
    ) -> None:
        if len(placement) < 1:
            raise ValueError("placement needs at least one shard")
        self.builder = builder
        self.placement = {name: list(services)
                          for name, services in placement.items()}
        self.scenario = scenario
        self.verify = verify
        self.timeout = timeout
        #: When set, each shard WALs to ``<durability_dir>/<shard>/`` and
        #: restores from it on startup (docs/durability.md).
        self.durability_dir = durability_dir
        #: When set, each shard arms flight-recorder auto-dumps under
        #: ``<incident_dir>/<shard>/`` and correlated incident dumps
        #: under ``<incident_dir>/incidents/<incident-id>/``.
        self.incident_dir = incident_dir
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            self._ctx = multiprocessing.get_context("spawn")
        self.shards: List[str] = sorted(self.placement)
        self._command: Dict[str, Any] = {}
        self._processes: Dict[str, Any] = {}
        self._started = False

    # -- parent-side protocol ------------------------------------------------

    def _recv(self, conn: Any, shard: str, expected: str,
              timeout: Optional[float] = None) -> Any:
        if not conn.poll(timeout if timeout is not None else self.timeout):
            raise TransportTimeout(
                f"shard {shard!r} sent no {expected!r} within "
                f"{self.timeout:.0f}s"
            )
        try:
            frame = conn.recv()
        except EOFError as exc:
            raise TransportError(f"shard {shard!r} died") from exc
        if frame[0] == "error":
            raise TransportError(f"shard {shard!r} failed: {frame[1]}")
        if frame[0] != expected:
            raise TransportError(
                f"shard {shard!r} answered {frame[0]!r}, expected {expected!r}"
            )
        return frame[1] if len(frame) > 1 else None

    # -- lifecycle phases ----------------------------------------------------

    def start(self) -> None:
        """Spawn every shard process, wire the pipe mesh, await ready."""
        if self._started:
            raise TransportError("ShardRunner already started")
        shards = self.shards
        # Full mesh of pair pipes plus one command pipe per shard.
        peer_conns: Dict[str, Dict[str, Any]] = {name: {} for name in shards}
        for i, a in enumerate(shards):
            for b in shards[i + 1:]:
                end_a, end_b = self._ctx.Pipe()
                peer_conns[a][b] = end_a
                peer_conns[b][a] = end_b
        for name in shards:
            parent_end, child_end = self._ctx.Pipe()
            self._command[name] = parent_end
            self._processes[name] = self._ctx.Process(
                target=_shard_main,
                name=f"shard-{name}",
                args=(name, self.builder, self.placement, self.scenario,
                      self.verify, child_end, peer_conns[name],
                      self.durability_dir, self.incident_dir),
            )
        self._started = True
        for name in shards:
            self._processes[name].start()
        # The parent's copies of the pipe ends belong to the children.
        for name in shards:
            for conn in peer_conns[name].values():
                conn.close()
        for name in shards:
            self._recv(self._command[name], name, "ready")

    def run_scenarios(self) -> Dict[str, Any]:
        """Run the scenario concurrently on every shard; collect results."""
        for name in self.shards:
            self._command[name].send(("run",))
        return {
            name: self._recv(self._command[name], name, "scenario_done")
            for name in self.shards
        }

    def quiesce(self, shard: Optional[str] = None) -> int:
        """Drain the whole mesh: delegate to one shard's
        :func:`~repro.runtime.monitor.cluster.cluster_quiesce` (every
        other shard drains while answering its ``health_report`` ops).
        ``shard`` defaults to the first; a crash phase targets a
        survivor explicitly. Returns the number of polls."""
        target = shard if shard is not None else self.shards[0]
        self._command[target].send(("quiesce", self.timeout))
        result = self._recv(
            self._command[target], target, "quiesced",
            timeout=self.timeout + 10.0,
        )
        if not result["quiesced"]:
            raise TransportTimeout(
                f"shard mesh did not quiesce within {self.timeout:.0f}s"
            )
        return result["polls"]

    def cluster_request(self, op: str, shard: Optional[str] = None,
                        **params: Any) -> Dict[str, Any]:
        """Relay one federated observability op (``metrics_dump``,
        ``health_report``, ``trace_ids``, ``trace_fetch``, ``offsets``)
        through ``shard`` (default: the first) and return its answer."""
        target = shard if shard is not None else self.shards[0]
        self._command[target].send(("cluster", op, params))
        result = self._recv(self._command[target], target, "cluster_result")
        if isinstance(result, dict) and "error" in result:
            raise TransportError(
                f"cluster op {op!r} via shard {target!r} failed: "
                f"{result['error']}"
            )
        return result

    def run_verify(self) -> Dict[str, Any]:
        for name in self.shards:
            self._command[name].send(("verify",))
        return {
            name: self._recv(self._command[name], name, "verified")
            for name in self.shards
        }

    def finish(self) -> Dict[str, Any]:
        """Final drain + per-shard stats; shard processes exit after."""
        for name in self.shards:
            self._command[name].send(("finish",))
        stats = {
            name: self._recv(self._command[name], name, "result")
            for name in self.shards
        }
        for name in self.shards:
            self._processes[name].join(timeout=self.timeout)
        return stats

    def close(self) -> None:
        """Terminate anything still alive and release the pipes."""
        for process in self._processes.values():
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        for conn in self._command.values():
            conn.close()
        self._command.clear()
        self._processes.clear()

    # -- the one-call lifecycle ----------------------------------------------

    def run(self) -> Dict[str, Any]:
        """Start the shards, run the scenario everywhere, wait for the
        mesh to drain, verify, and collect per-shard results."""
        started = time.monotonic()
        results: Dict[str, Any] = {name: {} for name in self.shards}
        try:
            self.start()
            scenarios = self.run_scenarios()
            polls = self.quiesce()
            verifies = self.run_verify()
            stats = self.finish()
            for name in self.shards:
                results[name]["scenario"] = scenarios[name]
                results[name]["verify"] = verifies[name]
                results[name]["stats"] = stats[name]
        finally:
            self.close()
        return {
            "shards": results,
            "quiesce_polls": polls,
            "elapsed": time.monotonic() - started,
        }
