"""Discrete-event simulation of the publisher->broker->subscriber pipeline.

The paper's scaling experiments (Figs 13b/13c) ran up to 400 publisher
and 400 subscriber workers on a thousand AWS instances; on one machine
the dependency-wait structure — which is what separates global, causal
and weak delivery — can be reproduced exactly with a discrete-event
simulator driven by *real* messages captured from the real publisher.

The model: M messages arrive at the subscriber (optionally gated by a
publisher stage); N subscriber workers each take a ready message (every
dependency satisfied), hold it for its service time (callback cost plus
DB write), then complete it, incrementing the dependency counters
exactly as :class:`SubscriberVersionStore` would. A DB "ceiling" models
engine saturation as a cap on concurrent in-engine operations.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class SimMessage:
    """One write message as the simulator sees it."""

    seq: int
    #: dependency -> required version (subscriber-side wait rule).
    deps: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_message(cls, message, mode: str = "causal") -> "SimMessage":
        """Project a real broker message into the simulator, applying the
        subscriber-side mode weakening of §4.2."""
        from repro.core.delivery import effective_dependencies
        from repro.core.dependencies import dep_name
        from repro.core.subscriber import table_for_type

        object_deps = set()
        for op in message.operations:
            table = table_for_type(op["types"][0])
            object_deps.add(dep_name(message.app, table, op["id"]))
        deps = effective_dependencies(message.dependencies, mode, object_deps)
        if mode == "weak":
            # Weak subscribers never wait; staleness discard does not
            # change throughput, so the projection drops all constraints.
            deps = {}
        return cls(seq=message.seq, deps=dict(deps))


@dataclass
class DBCeiling:
    """Engine saturation model: at most ``capacity`` concurrent in-engine
    operations, each holding the engine for ``op_time`` seconds."""

    capacity: int
    op_time: float


@dataclass
class SimResult:
    total_time: float
    completed: int
    throughput: float
    #: mean time a message waited for dependencies (queueing excluded).
    mean_dep_wait: float
    #: per-message completion times, ascending.
    completion_times: List[float] = field(default_factory=list)


class _Engine:
    """Shared event-driven core."""

    def __init__(self) -> None:
        self.now = 0.0
        self._events: List[Tuple[float, int]] = []
        self._counter = itertools.count()

    def schedule(self, at: float) -> None:
        heapq.heappush(self._events, (at, next(self._counter)))

    def next_time(self) -> Optional[float]:
        return self._events[0][0] if self._events else None

    def pop(self) -> float:
        at, _ = heapq.heappop(self._events)
        self.now = max(self.now, at)
        return self.now


def simulate_subscriber(
    messages: Sequence[SimMessage],
    workers: int,
    service_time: float,
    db: Optional[DBCeiling] = None,
    arrival_times: Optional[Sequence[float]] = None,
    metrics=None,
) -> SimResult:
    """Simulate N subscriber workers applying ``messages``.

    ``arrival_times`` (parallel to ``messages``) gates when each message
    reaches the queue; by default everything is available at t=0 (a
    saturated backlog, the stress-test setup of §6.3).

    ``metrics`` (a :class:`repro.runtime.metrics.MetricsRegistry`) mirrors
    the simulated run into ``sim.dep_wait`` / ``sim.completed`` so
    simulated and real pipelines report through the same surface.
    """
    if workers < 1:
        raise ValueError("need at least one worker")
    msgs = sorted(messages, key=lambda m: m.seq)
    arrivals = list(arrival_times) if arrival_times is not None else [0.0] * len(msgs)
    if len(arrivals) != len(msgs):
        raise ValueError("arrival_times must match messages")

    counters: Dict[str, int] = {}
    free_workers = workers
    # The engine ceiling: `capacity` slots, each held only for the
    # engine-op portion of a message (the callback runs outside the DB).
    db_slots: List[float] = [0.0] * db.capacity if db is not None else []

    waiting: List[Tuple[float, SimMessage]] = sorted(
        zip(arrivals, msgs), key=lambda pair: (pair[0], pair[1].seq)
    )
    blocked: List[Tuple[float, SimMessage]] = []
    # (completion_time, tie, message) heap
    in_flight: List[Tuple[float, int, SimMessage]] = []
    tie = itertools.count()
    now = 0.0
    completed = 0
    dep_wait_total = 0.0
    completions: List[float] = []
    idx = 0  # next not-yet-arrived message
    if db is not None:
        heapq.heapify(db_slots)

    def satisfied(m: SimMessage) -> bool:
        return all(counters.get(d, 0) >= v for d, v in m.deps.items())

    def start(m: SimMessage) -> float:
        """Worker takes the message now; returns its completion time."""
        callback_done = now + service_time
        if db is None:
            return callback_done
        slot_free = heapq.heappop(db_slots)
        db_start = max(callback_done, slot_free)
        db_end = db_start + db.op_time
        heapq.heappush(db_slots, db_end)
        return db_end

    while completed < len(msgs):
        while idx < len(waiting) and waiting[idx][0] <= now:
            blocked.append(waiting[idx])
            idx += 1
        # Start every ready message that can get a worker.
        progressed = True
        while progressed and free_workers > 0:
            progressed = False
            for i, (arrived, m) in enumerate(blocked):
                if satisfied(m):
                    blocked.pop(i)
                    free_workers -= 1
                    dep_wait_total += now - arrived
                    heapq.heappush(in_flight, (start(m), next(tie), m))
                    progressed = True
                    break
        # Advance time: to the next completion or the next arrival.
        next_completion = in_flight[0][0] if in_flight else None
        next_arrival = waiting[idx][0] if idx < len(waiting) else None
        if next_completion is None and next_arrival is None:
            # Deadlock: blocked messages whose deps can never be met.
            break
        if next_completion is not None and (
            next_arrival is None or next_completion <= next_arrival
        ):
            now, _, done = heapq.heappop(in_flight)
            free_workers += 1
            for dep in done.deps:
                counters[dep] = counters.get(dep, 0) + 1
            completed += 1
            completions.append(now)
        else:
            now = next_arrival

    total_time = max(now, 1e-12)
    if metrics is not None:
        metrics.counter("sim.completed").increment(completed)
        if completed:
            metrics.histogram("sim.dep_wait").record(dep_wait_total / completed)
    return SimResult(
        total_time=total_time,
        completed=completed,
        throughput=completed / total_time,
        mean_dep_wait=dep_wait_total / completed if completed else 0.0,
        completion_times=completions,
    )


def simulate_pipeline(
    messages: Sequence[SimMessage],
    workers: int,
    publish_time: float,
    subscribe_time: float,
    publisher_db: Optional[DBCeiling] = None,
    subscriber_db: Optional[DBCeiling] = None,
) -> SimResult:
    """Two-stage pipeline: N publisher workers emit the messages (gated
    by the publisher DB ceiling), N subscriber workers apply them (gated
    by dependencies and the subscriber DB ceiling) — the Fig 13(b) setup
    with identical worker counts on both sides."""
    # Stage 1: publishers are dependency-free; their completion times
    # become the subscriber-side arrival times (FIFO: earliest publishes
    # carry the earliest sequence numbers).
    stage1 = simulate_subscriber(
        [SimMessage(seq=m.seq) for m in messages],
        workers=workers,
        service_time=publish_time,
        db=publisher_db,
    )
    ordered = sorted(messages, key=lambda m: m.seq)
    arrivals = sorted(stage1.completion_times)
    result = simulate_subscriber(
        ordered,
        workers=workers,
        service_time=subscribe_time,
        db=subscriber_db,
        arrival_times=arrivals,
    )
    return SimResult(
        total_time=max(result.total_time, stage1.total_time),
        completed=result.completed,
        throughput=result.completed / max(result.total_time, stage1.total_time),
        mean_dep_wait=result.mean_dep_wait,
    )


def capture_messages(ecosystem, publisher_app: str, probe_name: str = "sim-probe"):
    """Bind a probe queue to a publisher and return a drainer function —
    workloads run against the *real* publisher and the simulator replays
    the real dependency structure."""
    queue = ecosystem.broker.bind(probe_name, publisher_app)

    def drain() -> List:
        out = []
        while True:
            message = queue.pop()
            if message is None:
                return out
            queue.ack(message)
            out.append(message)

    return drain
