"""Directed conformance scenarios for the non-interleaving races.

The seeded harness explores races that live between the delivery yield
points. Three of the fixed bugs live elsewhere — in wall-clock wait
loops and teardown paths no interleaving schedule reaches — so each
gets a *directed* scenario that reproduces its exact failure window and
reports checker violations under the same stable invariant names:

- :func:`pop_deadline_scenario` (``queue.pop-deadline``): a blocking
  pop must survive spurious wakeups / stolen notifies and keep waiting
  until its deadline.
- :func:`fleet_idle_deadline_scenario` (``fleet.idle-deadline``):
  ``WorkerFleet.wait_until_idle(timeout=T)`` must treat ``T`` as one
  shared deadline, not a per-pool, per-round grant.
- :func:`drain_leak_scenario` (``drain.no-leaked-deliveries``): a
  queue decommissioned mid-``drain`` must get its already-popped
  pending messages back (tolerated nacks), not leak them.
- :func:`flow_coalesce_safety_scenario` (``flow.admission-safety``):
  adjacent causal writes coalesce, but merging past an intervener is
  rejected in *both* hazard directions — an intervener that depends on
  a key the survivor increments, and an absorbed write that depends on
  a key an intervener increments.

The module also pins the *committed schedules* for the two interleaving
races (generation gate vs in-flight deliveries; ack after
decommission): seeds found by reverting each fix and sweeping, kept
here so the regression tests replay exactly the schedule that exposes
the race window.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Tuple

from repro.broker.message import Message
from repro.broker.queue import SubscriberQueue
from repro.errors import QueueDecommissioned
from repro.runtime.conformance.checker import (
    INV_FLOW,
    INV_IDLE,
    INV_LEAK,
    INV_POP,
    Violation,
)
from repro.runtime.conformance.harness import ScheduleConfig
from repro.runtime.interleave import install_hook, uninstall_hook

# -- committed schedules for the interleaving races --------------------------
#
# Found by reverting the fix under test and sweeping seeds until the
# checker flagged the race, then re-verified green with the fix in
# place. The regression tests assert both directions *and* that the
# trace actually enters the race window (the marker event), so the
# schedules cannot silently rot into not exercising the bug.

#: Generation gate vs in-flight deliveries: with ``peek_unacked``
#: blinded, this schedule flushes the app's counters while an older-
#: generation delivery is popped-but-unacked (``generation.flush-safety``).
GATE_RACE_SCHEDULE = ScheduleConfig(
    mode="causal", seed=1, workers=3, messages=10, generation_bump=True
)
GATE_RACE_MARKER = "generation.deferred"

#: Ack after decommission: with the legacy strict ``ack``, this
#: schedule kills a worker mid-message when the queue overflows
#: (``worker.no-silent-death``); with the fix the ack is a tolerated
#: no-op (``queue.ack.tolerated`` appears in the trace).
DECOMMISSION_ACK_SCHEDULE = ScheduleConfig(
    mode="causal", seed=2, workers=3, messages=12, queue_limit=4
)
DECOMMISSION_ACK_MARKER = "queue.ack.tolerated"


def trace_has(trace: List[str], marker: str) -> bool:
    """Does any normalized trace line contain the given event label?"""
    return any(marker in line for line in trace)


def _plain_message(app: str = "pub") -> Message:
    return Message(
        app=app,
        operations=[],
        dependencies={},
        published_at=0.0,
    )


# -- queue.pop-deadline ------------------------------------------------------

def pop_deadline_scenario(
    timeout: float = 0.5, pokes: int = 3
) -> List[Violation]:
    """Spurious-wakeup injection against a blocking ``pop``.

    A consumer blocks in ``pop(timeout=...)`` on an empty queue; we
    fire several bare ``notify_all`` pokes (the condition-variable
    wakeups a consumer must treat as spurious — equivalently, notifies
    stolen by a faster sibling), then publish a real message well
    before the deadline. A conforming pop re-checks its predicate and
    keeps waiting; the old single-``wait(timeout)`` implementation
    returned ``None`` on the first poke, dropping the delivery from
    the caller's point of view.
    """
    queue = SubscriberQueue("conformance-pop")
    outcome: Dict[str, Any] = {}
    started = threading.Event()

    def consumer() -> None:
        started.set()
        begin = time.monotonic()
        message = queue.pop(timeout=timeout)
        outcome["elapsed"] = time.monotonic() - begin
        outcome["message"] = message

    thread = threading.Thread(target=consumer, daemon=True)
    thread.start()
    started.wait(timeout)
    poke_gap = timeout / (pokes + 3)
    for _ in range(pokes):
        time.sleep(poke_gap)
        with queue._lock:
            queue._available.notify_all()
    time.sleep(poke_gap)
    queue.publish(_plain_message())
    thread.join(timeout * 4)

    violations: List[Violation] = []
    if thread.is_alive():
        violations.append(
            Violation(INV_POP, "pop never returned after a real publish")
        )
    elif outcome.get("message") is None:
        violations.append(
            Violation(
                INV_POP,
                f"pop returned None after {outcome.get('elapsed', 0):.3f}s "
                f"with {timeout:.3f}s of patience: a spurious wakeup was "
                "treated as a timeout and the delivery was dropped",
            )
        )
    return violations


# -- fleet.idle-deadline -----------------------------------------------------

class _FakeClock:
    """Minimal stand-in for the ``time`` module inside workers.py."""

    def __init__(self) -> None:
        self.now = 0.0

    def monotonic(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += max(0.0, seconds)


class _GreedyPool:
    """A pool that consumes every second of whatever timeout it is
    granted before reporting idle — the worst case for a fleet that
    hands each pool its own full budget."""

    def __init__(self, clock: _FakeClock) -> None:
        self._clock = clock

    def wait_until_idle(self, timeout: float = 10.0) -> bool:
        self._clock.advance(timeout)
        return True


def fleet_idle_deadline_scenario(
    pools: int = 4, timeout: float = 30.0, settle_rounds: int = 3
) -> List[Violation]:
    """``wait_until_idle(timeout=T)`` against greedy pools on a fake
    clock: total elapsed time must stay at ``T``, not inflate to
    ``settle_rounds × pools × T`` (24x at the defaults)."""
    from repro.runtime import workers as workers_mod

    clock = _FakeClock()
    fleet = workers_mod.WorkerFleet.__new__(workers_mod.WorkerFleet)
    fleet.pools = [_GreedyPool(clock) for _ in range(pools)]
    real_time = workers_mod.time
    workers_mod.time = clock  # type: ignore[assignment]
    try:
        fleet.wait_until_idle(timeout=timeout, settle_rounds=settle_rounds)
    finally:
        workers_mod.time = real_time
    violations: List[Violation] = []
    # One shared deadline: the greedy first pool may eat the whole
    # budget, but the call as a whole must not exceed it (small slack
    # for the zero-remaining waits granted to the later pools).
    if clock.now > timeout * 1.5:
        violations.append(
            Violation(
                INV_IDLE,
                f"wait_until_idle(timeout={timeout}) consumed {clock.now:.1f}s "
                f"across {pools} pools x {settle_rounds} rounds — the timeout "
                "was granted per pool instead of shared",
            )
        )
    return violations


# -- drain.no-leaked-deliveries ----------------------------------------------

class _DecommissionOnPop:
    """Interleave hook that overflows the queue at the Nth ``queue.pop``,
    decommissioning it while ``drain`` holds popped-but-pending
    messages."""

    def __init__(self, overflow: Callable[[], None], at_pop: int) -> None:
        self.overflow = overflow
        self.at_pop = at_pop
        self.pops = 0
        self.events: List[Tuple[str, Dict[str, Any]]] = []
        self._injecting = False

    def __call__(self, label: str, info: Dict[str, Any], pause: bool) -> None:
        self.events.append((label, info))
        if label == "queue.pop" and not self._injecting:
            self.pops += 1
            if self.pops == self.at_pop:
                self._injecting = True
                self.overflow()


def drain_leak_scenario(queue_limit: int = 4) -> List[Violation]:
    """Decommission the queue in the middle of ``drain``'s pop loop and
    account for every message drain had already popped: each must come
    back via a nack (tolerated on the dead queue) instead of leaking as
    a phantom in-flight delivery."""
    from repro.core import Ecosystem
    from repro.databases.document import MongoLike
    from repro.databases.relational import PostgresLike
    from repro.orm import Field, Model

    eco = Ecosystem(queue_limit=queue_limit)
    pub = eco.service("pub", database=MongoLike("pub-db"))

    @pub.model(publish=["name"], name="Doc")
    class PubDoc(Model):
        name = Field(str)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(subscribe={"from": "pub", "fields": ["name"]}, name="Doc")
    class SubDoc(Model):
        name = Field(str)

    # Two deliveries drain will pop and hold: unsatisfiable causal
    # updates (their create message is dropped, so their dependency
    # counters can never catch up during the scenario).
    eco.broker.drop_next(1)
    with pub.controller():
        doc = PubDoc.create(name="seed")
    with pub.controller():
        doc.name = "first-orphan-update"
        doc.save()
    with pub.controller():
        doc.name = "second-orphan-update"
        doc.save()

    def overflow() -> None:
        with pub.controller():
            for i in range(queue_limit + 2):
                PubDoc.create(name=f"flood-{i}")

    hook = _DecommissionOnPop(overflow, at_pop=3)
    install_hook(hook)
    decommission_raised = False
    try:
        sub.subscriber.drain()
    except QueueDecommissioned:
        decommission_raised = True
    finally:
        uninstall_hook(hook)

    violations: List[Violation] = []
    if not decommission_raised:
        violations.append(
            Violation(
                INV_LEAK,
                "queue decommissioned mid-drain but drain did not surface "
                "QueueDecommissioned",
            )
        )
    popped = set()
    returned = set()
    for label, info in hook.events:
        uid = info["message"].uid if "message" in info else None
        if label == "queue.popped":
            popped.add(uid)
        elif label in (
            "queue.acked",
            "queue.ack.tolerated",
            "queue.nacked",
            "queue.nack.tolerated",
        ):
            returned.add(uid)
    leaked = sorted(popped - returned)
    if leaked:
        violations.append(
            Violation(
                INV_LEAK,
                f"drain leaked popped deliveries {leaked}: neither acked nor "
                "returned via nack when the queue was decommissioned",
            )
        )
    return violations


# -- flow.admission-safety ---------------------------------------------------

def flow_coalesce_safety_scenario() -> List[Violation]:
    """Causal-mode coalescing safety, both directions.

    Adjacent same-object writes must merge (create+update, then the
    trailing update pair), but merging *past an intervener* must be
    rejected in both hazard directions: an intervener whose
    dependencies overlap the survivor's keys (it would wait on counter
    bumps the merge moves behind it), and an absorbed write that
    depends on a key the intervener increments (merged to the
    survivor's earlier position, it would wait on a bump queued behind
    itself). The conservative union check refuses any overlap. After
    each phase the scenario drains and asserts the coalesced stream
    converges to the final payload with nothing left queued."""
    from repro.core import Ecosystem
    from repro.databases.document import MongoLike
    from repro.databases.relational import PostgresLike
    from repro.orm import Field, Model
    from repro.runtime.flow import FlowConfig

    eco = Ecosystem()
    eco.enable_flow(FlowConfig(batch_max=4))
    pub = eco.service(
        "pub", database=MongoLike("pub-db"), delivery_mode="causal"
    )

    @pub.model(publish=["name", "value"], name="Doc")
    class PubDoc(Model):
        name = Field(str)
        value = Field(int, default=0)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(
        subscribe={"from": "pub", "fields": ["name", "value"], "mode": "causal"},
        name="Doc",
    )
    class SubDoc(Model):
        name = Field(str)
        value = Field(int, default=0)

    queue = sub.subscriber.queue
    violations: List[Violation] = []

    with pub.controller():
        target = PubDoc.create(name="target", value=0)
    with pub.controller():
        target.value = 1
        target.save()  # adjacent to the create: merges into it
    if eco.metrics.value("flow.sub.coalesced") != 1 or len(queue) != 1:
        violations.append(
            Violation(
                INV_FLOW,
                "adjacent same-object causal writes did not coalesce "
                f"(coalesced={eco.metrics.value('flow.sub.coalesced')}, "
                f"queued={len(queue)})",
            )
        )

    with pub.controller() as ctx:
        # The intervener *reads* the target: its message depends on the
        # target's counter, which the queued create+update increments.
        ctx.add_read_deps(target)
        PubDoc.create(name="reader", value=0)
    with pub.controller():
        target.value = 2
        target.save()  # must NOT merge past the reader

    rejected = eco.metrics.value("flow.sub.coalesce_rejected")
    if rejected < 1 or len(queue) != 3:
        violations.append(
            Violation(
                INV_FLOW,
                "unsafe causal coalesce was not rejected: the intervener's "
                "dependencies overlap the survivor's keys "
                f"(rejected={rejected}, queued={len(queue)})",
            )
        )

    with pub.controller():
        target.value = 3
        target.save()  # adjacent to the rejected update: safe again
    if eco.metrics.value("flow.sub.coalesced") != 2 or len(queue) != 3:
        violations.append(
            Violation(
                INV_FLOW,
                "safe trailing coalesce did not happen "
                f"(coalesced={eco.metrics.value('flow.sub.coalesced')}, "
                f"queued={len(queue)})",
            )
        )

    sub.subscriber.drain()
    row = SubDoc.__mapper__.find(target.id)
    final = row["value"] if row is not None else None
    if len(queue) or final != 3:
        violations.append(
            Violation(
                INV_FLOW,
                f"coalesced stream did not converge: queued={len(queue)}, "
                f"replicated value={final!r} (expected 3)",
            )
        )

    # Reverse hazard direction: this time the *absorbed* write depends
    # on a key the intervener increments. The queued survivor writes
    # the target; the intervener creates an unrelated object; the
    # absorbed write reads that object, so its message requires the
    # intervener's counter bump. Merging it into the survivor would
    # park that wait at the survivor's earlier position — ahead of the
    # very bump (carried by the intervener) that satisfies it.
    rejected_before = eco.metrics.value("flow.sub.coalesce_rejected")
    with pub.controller():
        target.value = 4
        target.save()
    with pub.controller():
        other = PubDoc.create(name="other", value=0)
    with pub.controller() as ctx:
        ctx.add_read_deps(other)
        target.value = 5
        target.save()  # must NOT merge ahead of the "other" create
    rejected = eco.metrics.value("flow.sub.coalesce_rejected")
    if rejected != rejected_before + 1 or len(queue) != 3:
        violations.append(
            Violation(
                INV_FLOW,
                "unsafe reverse-direction causal coalesce was not rejected: "
                "the absorbed write depends on a key the intervener bumps "
                f"(rejected={rejected - rejected_before}, queued={len(queue)})",
            )
        )

    sub.subscriber.drain()
    row = SubDoc.__mapper__.find(target.id)
    final = row["value"] if row is not None else None
    if len(queue) or final != 5:
        violations.append(
            Violation(
                INV_FLOW,
                "reverse-direction stream did not converge: "
                f"queued={len(queue)}, replicated value={final!r} (expected 5)",
            )
        )
    return violations


def run_directed_scenarios() -> Dict[str, List[Violation]]:
    """All directed scenarios; the CLI runs these before sweeping."""
    return {
        "queue.pop-deadline": pop_deadline_scenario(),
        "fleet.idle-deadline": fleet_idle_deadline_scenario(),
        "drain.no-leaked-deliveries": drain_leak_scenario(),
        "flow.unsafe-coalesce-rejected": flow_coalesce_safety_scenario(),
    }
