"""Directed conformance scenarios for the non-interleaving races.

The seeded harness explores races that live between the delivery yield
points. Three of the fixed bugs live elsewhere — in wall-clock wait
loops and teardown paths no interleaving schedule reaches — so each
gets a *directed* scenario that reproduces its exact failure window and
reports checker violations under the same stable invariant names:

- :func:`pop_deadline_scenario` (``queue.pop-deadline``): a blocking
  pop must survive spurious wakeups / stolen notifies and keep waiting
  until its deadline.
- :func:`fleet_idle_deadline_scenario` (``fleet.idle-deadline``):
  ``WorkerFleet.wait_until_idle(timeout=T)`` must treat ``T`` as one
  shared deadline, not a per-pool, per-round grant.
- :func:`drain_leak_scenario` (``drain.no-leaked-deliveries``): a
  queue decommissioned mid-``drain`` must get its already-popped
  pending messages back (tolerated nacks), not leak them.
- :func:`flow_coalesce_safety_scenario` (``flow.admission-safety``):
  adjacent causal writes coalesce, but merging past an intervener is
  rejected in *both* hazard directions — an intervener that depends on
  a key the survivor increments, and an absorbed write that depends on
  a key an intervener increments.
- :func:`durability_crash_point_scenario`
  (``durability.restore-equivalence``): crash the pipeline at each WAL
  crash point (``after-append`` / ``before-fsync`` / ``before-ack``),
  abandon the wounded process state, and prove a fresh restore over
  the same data dir converges the replicas — including the genuine
  group-commit loss window of the ``interval`` fsync policy.
- :func:`durability_kill_restart_scenario` (same invariant): the
  uncatchable version — a child process SIGKILLs *itself* mid-append
  via a hard crash injector, and the parent restores from the orphaned
  WAL and audits the replicas back to digest-equality.
- :func:`cdc_poll_crash_scenario` / :func:`cdc_kill_restart_scenario`
  (``cdc.outbox-delivery``): crash the CDC poller mid-tail — before or
  after its cursor checkpoint, softly or by genuine SIGKILL — and
  prove a restore re-tails the outbox to digest-equal replicas with
  zero lost raw writes.

The module also pins the *committed schedules* for the two interleaving
races (generation gate vs in-flight deliveries; ack after
decommission): seeds found by reverting each fix and sweeping, kept
here so the regression tests replay exactly the schedule that exposes
the race window.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Tuple

from repro.broker.message import Message
from repro.broker.queue import SubscriberQueue
from repro.errors import QueueDecommissioned
from repro.runtime.conformance.checker import (
    INV_CDC,
    INV_DURABLE,
    INV_FLOW,
    INV_IDLE,
    INV_LEAK,
    INV_POP,
    Violation,
)
from repro.runtime.conformance.harness import ScheduleConfig
from repro.runtime.interleave import install_hook, uninstall_hook

# -- committed schedules for the interleaving races --------------------------
#
# Found by reverting the fix under test and sweeping seeds until the
# checker flagged the race, then re-verified green with the fix in
# place. The regression tests assert both directions *and* that the
# trace actually enters the race window (the marker event), so the
# schedules cannot silently rot into not exercising the bug.

#: Generation gate vs in-flight deliveries: with ``peek_unacked``
#: blinded, this schedule flushes the app's counters while an older-
#: generation delivery is popped-but-unacked (``generation.flush-safety``).
GATE_RACE_SCHEDULE = ScheduleConfig(
    mode="causal", seed=1, workers=3, messages=10, generation_bump=True
)
GATE_RACE_MARKER = "generation.deferred"

#: Ack after decommission: with the legacy strict ``ack``, this
#: schedule kills a worker mid-message when the queue overflows
#: (``worker.no-silent-death``); with the fix the ack is a tolerated
#: no-op (``queue.ack.tolerated`` appears in the trace).
DECOMMISSION_ACK_SCHEDULE = ScheduleConfig(
    mode="causal", seed=2, workers=3, messages=12, queue_limit=4
)
DECOMMISSION_ACK_MARKER = "queue.ack.tolerated"


def trace_has(trace: List[str], marker: str) -> bool:
    """Does any normalized trace line contain the given event label?"""
    return any(marker in line for line in trace)


def _plain_message(app: str = "pub") -> Message:
    return Message(
        app=app,
        operations=[],
        dependencies={},
        published_at=0.0,
    )


# -- queue.pop-deadline ------------------------------------------------------

def pop_deadline_scenario(
    timeout: float = 0.5, pokes: int = 3
) -> List[Violation]:
    """Spurious-wakeup injection against a blocking ``pop``.

    A consumer blocks in ``pop(timeout=...)`` on an empty queue; we
    fire several bare ``notify_all`` pokes (the condition-variable
    wakeups a consumer must treat as spurious — equivalently, notifies
    stolen by a faster sibling), then publish a real message well
    before the deadline. A conforming pop re-checks its predicate and
    keeps waiting; the old single-``wait(timeout)`` implementation
    returned ``None`` on the first poke, dropping the delivery from
    the caller's point of view.
    """
    queue = SubscriberQueue("conformance-pop")
    outcome: Dict[str, Any] = {}
    started = threading.Event()

    def consumer() -> None:
        started.set()
        begin = time.monotonic()
        message = queue.pop(timeout=timeout)
        outcome["elapsed"] = time.monotonic() - begin
        outcome["message"] = message

    thread = threading.Thread(target=consumer, daemon=True)
    thread.start()
    started.wait(timeout)
    poke_gap = timeout / (pokes + 3)
    for _ in range(pokes):
        time.sleep(poke_gap)
        with queue._lock:
            queue._available.notify_all()
    time.sleep(poke_gap)
    queue.publish(_plain_message())
    thread.join(timeout * 4)

    violations: List[Violation] = []
    if thread.is_alive():
        violations.append(
            Violation(INV_POP, "pop never returned after a real publish")
        )
    elif outcome.get("message") is None:
        violations.append(
            Violation(
                INV_POP,
                f"pop returned None after {outcome.get('elapsed', 0):.3f}s "
                f"with {timeout:.3f}s of patience: a spurious wakeup was "
                "treated as a timeout and the delivery was dropped",
            )
        )
    return violations


# -- fleet.idle-deadline -----------------------------------------------------

class _FakeClock:
    """Minimal stand-in for the ``time`` module inside workers.py."""

    def __init__(self) -> None:
        self.now = 0.0

    def monotonic(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += max(0.0, seconds)


class _GreedyPool:
    """A pool that consumes every second of whatever timeout it is
    granted before reporting idle — the worst case for a fleet that
    hands each pool its own full budget."""

    def __init__(self, clock: _FakeClock) -> None:
        self._clock = clock

    def wait_until_idle(self, timeout: float = 10.0) -> bool:
        self._clock.advance(timeout)
        return True


def fleet_idle_deadline_scenario(
    pools: int = 4, timeout: float = 30.0, settle_rounds: int = 3
) -> List[Violation]:
    """``wait_until_idle(timeout=T)`` against greedy pools on a fake
    clock: total elapsed time must stay at ``T``, not inflate to
    ``settle_rounds × pools × T`` (24x at the defaults)."""
    from repro.runtime import workers as workers_mod

    clock = _FakeClock()
    fleet = workers_mod.WorkerFleet.__new__(workers_mod.WorkerFleet)
    fleet.pools = [_GreedyPool(clock) for _ in range(pools)]
    real_time = workers_mod.time
    workers_mod.time = clock  # type: ignore[assignment]
    try:
        fleet.wait_until_idle(timeout=timeout, settle_rounds=settle_rounds)
    finally:
        workers_mod.time = real_time
    violations: List[Violation] = []
    # One shared deadline: the greedy first pool may eat the whole
    # budget, but the call as a whole must not exceed it (small slack
    # for the zero-remaining waits granted to the later pools).
    if clock.now > timeout * 1.5:
        violations.append(
            Violation(
                INV_IDLE,
                f"wait_until_idle(timeout={timeout}) consumed {clock.now:.1f}s "
                f"across {pools} pools x {settle_rounds} rounds — the timeout "
                "was granted per pool instead of shared",
            )
        )
    return violations


# -- drain.no-leaked-deliveries ----------------------------------------------

class _DecommissionOnPop:
    """Interleave hook that overflows the queue at the Nth ``queue.pop``,
    decommissioning it while ``drain`` holds popped-but-pending
    messages."""

    def __init__(self, overflow: Callable[[], None], at_pop: int) -> None:
        self.overflow = overflow
        self.at_pop = at_pop
        self.pops = 0
        self.events: List[Tuple[str, Dict[str, Any]]] = []
        self._injecting = False

    def __call__(self, label: str, info: Dict[str, Any], pause: bool) -> None:
        self.events.append((label, info))
        if label == "queue.pop" and not self._injecting:
            self.pops += 1
            if self.pops == self.at_pop:
                self._injecting = True
                self.overflow()


def drain_leak_scenario(queue_limit: int = 4) -> List[Violation]:
    """Decommission the queue in the middle of ``drain``'s pop loop and
    account for every message drain had already popped: each must come
    back via a nack (tolerated on the dead queue) instead of leaking as
    a phantom in-flight delivery."""
    from repro.core import Ecosystem
    from repro.databases.document import MongoLike
    from repro.databases.relational import PostgresLike
    from repro.orm import Field, Model

    eco = Ecosystem(queue_limit=queue_limit)
    pub = eco.service("pub", database=MongoLike("pub-db"))

    @pub.model(publish=["name"], name="Doc")
    class PubDoc(Model):
        name = Field(str)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(subscribe={"from": "pub", "fields": ["name"]}, name="Doc")
    class SubDoc(Model):
        name = Field(str)

    # Two deliveries drain will pop and hold: unsatisfiable causal
    # updates (their create message is dropped, so their dependency
    # counters can never catch up during the scenario).
    eco.broker.drop_next(1)
    with pub.controller():
        doc = PubDoc.create(name="seed")
    with pub.controller():
        doc.name = "first-orphan-update"
        doc.save()
    with pub.controller():
        doc.name = "second-orphan-update"
        doc.save()

    def overflow() -> None:
        with pub.controller():
            for i in range(queue_limit + 2):
                PubDoc.create(name=f"flood-{i}")

    hook = _DecommissionOnPop(overflow, at_pop=3)
    install_hook(hook)
    decommission_raised = False
    try:
        sub.subscriber.drain()
    except QueueDecommissioned:
        decommission_raised = True
    finally:
        uninstall_hook(hook)

    violations: List[Violation] = []
    if not decommission_raised:
        violations.append(
            Violation(
                INV_LEAK,
                "queue decommissioned mid-drain but drain did not surface "
                "QueueDecommissioned",
            )
        )
    popped = set()
    returned = set()
    for label, info in hook.events:
        uid = info["message"].uid if "message" in info else None
        if label == "queue.popped":
            popped.add(uid)
        elif label in (
            "queue.acked",
            "queue.ack.tolerated",
            "queue.nacked",
            "queue.nack.tolerated",
        ):
            returned.add(uid)
    leaked = sorted(popped - returned)
    if leaked:
        violations.append(
            Violation(
                INV_LEAK,
                f"drain leaked popped deliveries {leaked}: neither acked nor "
                "returned via nack when the queue was decommissioned",
            )
        )
    return violations


# -- flow.admission-safety ---------------------------------------------------

def flow_coalesce_safety_scenario() -> List[Violation]:
    """Causal-mode coalescing safety, both directions.

    Adjacent same-object writes must merge (create+update, then the
    trailing update pair), but merging *past an intervener* must be
    rejected in both hazard directions: an intervener whose
    dependencies overlap the survivor's keys (it would wait on counter
    bumps the merge moves behind it), and an absorbed write that
    depends on a key the intervener increments (merged to the
    survivor's earlier position, it would wait on a bump queued behind
    itself). The conservative union check refuses any overlap. After
    each phase the scenario drains and asserts the coalesced stream
    converges to the final payload with nothing left queued."""
    from repro.core import Ecosystem
    from repro.databases.document import MongoLike
    from repro.databases.relational import PostgresLike
    from repro.orm import Field, Model
    from repro.runtime.flow import FlowConfig

    eco = Ecosystem()
    eco.enable_flow(FlowConfig(batch_max=4))
    pub = eco.service(
        "pub", database=MongoLike("pub-db"), delivery_mode="causal"
    )

    @pub.model(publish=["name", "value"], name="Doc")
    class PubDoc(Model):
        name = Field(str)
        value = Field(int, default=0)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(
        subscribe={"from": "pub", "fields": ["name", "value"], "mode": "causal"},
        name="Doc",
    )
    class SubDoc(Model):
        name = Field(str)
        value = Field(int, default=0)

    queue = sub.subscriber.queue
    violations: List[Violation] = []

    with pub.controller():
        target = PubDoc.create(name="target", value=0)
    with pub.controller():
        target.value = 1
        target.save()  # adjacent to the create: merges into it
    if eco.metrics.value("flow.sub.coalesced") != 1 or len(queue) != 1:
        violations.append(
            Violation(
                INV_FLOW,
                "adjacent same-object causal writes did not coalesce "
                f"(coalesced={eco.metrics.value('flow.sub.coalesced')}, "
                f"queued={len(queue)})",
            )
        )

    with pub.controller() as ctx:
        # The intervener *reads* the target: its message depends on the
        # target's counter, which the queued create+update increments.
        ctx.add_read_deps(target)
        PubDoc.create(name="reader", value=0)
    with pub.controller():
        target.value = 2
        target.save()  # must NOT merge past the reader

    rejected = eco.metrics.value("flow.sub.coalesce_rejected")
    if rejected < 1 or len(queue) != 3:
        violations.append(
            Violation(
                INV_FLOW,
                "unsafe causal coalesce was not rejected: the intervener's "
                "dependencies overlap the survivor's keys "
                f"(rejected={rejected}, queued={len(queue)})",
            )
        )

    with pub.controller():
        target.value = 3
        target.save()  # adjacent to the rejected update: safe again
    if eco.metrics.value("flow.sub.coalesced") != 2 or len(queue) != 3:
        violations.append(
            Violation(
                INV_FLOW,
                "safe trailing coalesce did not happen "
                f"(coalesced={eco.metrics.value('flow.sub.coalesced')}, "
                f"queued={len(queue)})",
            )
        )

    sub.subscriber.drain()
    row = SubDoc.__mapper__.find(target.id)
    final = row["value"] if row is not None else None
    if len(queue) or final != 3:
        violations.append(
            Violation(
                INV_FLOW,
                f"coalesced stream did not converge: queued={len(queue)}, "
                f"replicated value={final!r} (expected 3)",
            )
        )

    # Reverse hazard direction: this time the *absorbed* write depends
    # on a key the intervener increments. The queued survivor writes
    # the target; the intervener creates an unrelated object; the
    # absorbed write reads that object, so its message requires the
    # intervener's counter bump. Merging it into the survivor would
    # park that wait at the survivor's earlier position — ahead of the
    # very bump (carried by the intervener) that satisfies it.
    rejected_before = eco.metrics.value("flow.sub.coalesce_rejected")
    with pub.controller():
        target.value = 4
        target.save()
    with pub.controller():
        other = PubDoc.create(name="other", value=0)
    with pub.controller() as ctx:
        ctx.add_read_deps(other)
        target.value = 5
        target.save()  # must NOT merge ahead of the "other" create
    rejected = eco.metrics.value("flow.sub.coalesce_rejected")
    if rejected != rejected_before + 1 or len(queue) != 3:
        violations.append(
            Violation(
                INV_FLOW,
                "unsafe reverse-direction causal coalesce was not rejected: "
                "the absorbed write depends on a key the intervener bumps "
                f"(rejected={rejected - rejected_before}, queued={len(queue)})",
            )
        )

    sub.subscriber.drain()
    row = SubDoc.__mapper__.find(target.id)
    final = row["value"] if row is not None else None
    if len(queue) or final != 5:
        violations.append(
            Violation(
                INV_FLOW,
                "reverse-direction stream did not converge: "
                f"queued={len(queue)}, replicated value={final!r} (expected 5)",
            )
        )
    return violations


# -- durability.restore-equivalence: crash points ----------------------------

def _durability_scenario_eco(data_dir: str, fsync: str) -> Tuple[Any, ...]:
    """A two-service causal pipeline with durability armed into
    ``data_dir`` — the fixture every crash scenario builds twice: once
    to wound, once to restore."""
    from repro.core import Ecosystem
    from repro.databases.document import MongoLike
    from repro.databases.relational import PostgresLike
    from repro.orm import Field, Model

    eco = Ecosystem()
    pub = eco.service(
        "pub", database=MongoLike("pub-db"), delivery_mode="causal"
    )

    @pub.model(publish=["name", "value"], name="Doc")
    class PubDoc(Model):
        name = Field(str)
        value = Field(int, default=0)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(
        subscribe={"from": "pub", "fields": ["name", "value"], "mode": "causal"},
        name="Doc",
    )
    class SubDoc(Model):
        name = Field(str)
        value = Field(int, default=0)

    manager = eco.enable_durability(data_dir=data_dir, fsync=fsync, group_max=4)
    return eco, pub, sub, manager, PubDoc


def durability_crash_point_scenario(
    point: str, writes: int = 8
) -> List[Violation]:
    """Crash at one WAL crash point, then prove restore convergence.

    Ecosystem A publishes causal writes (and, for ``before-ack``,
    drains) with a :class:`CrashInjector` armed at ``point``; the
    injected :class:`SimulatedCrash` abandons it mid-flight — unacked
    deliveries popped, file handle open, no clean close or snapshot.
    ``before-fsync`` runs the ``interval`` policy and then drops the
    unsynced group-commit buffer, modelling the real loss window.
    Ecosystem B restores over the same data dir; the replicas must
    converge to digest-equality (directly, or via targeted repair for
    the writes the loss window genuinely discarded)."""
    import shutil
    import tempfile

    from repro.durability.wal import (
        FSYNC_INTERVAL,
        FSYNC_OFF,
        CrashInjector,
        SimulatedCrash,
    )

    fsync = FSYNC_INTERVAL if point == "before-fsync" else FSYNC_OFF
    after = 1 if point == "before-fsync" else 3
    data_dir = tempfile.mkdtemp(prefix="repro-conf-crash-")
    violations: List[Violation] = []
    manager_b = None
    try:
        eco_a, pub_a, sub_a, manager_a, doc_cls = _durability_scenario_eco(
            data_dir, fsync
        )
        manager_a.wal.injector = CrashInjector(point, after_records=after)
        crashed = False
        try:
            for i in range(writes):
                with pub_a.controller():
                    doc_cls.create(name=f"doc-{i}", value=i)
            sub_a.subscriber.drain()
        except SimulatedCrash:
            crashed = True
        if not crashed:
            violations.append(
                Violation(
                    INV_DURABLE,
                    f"crash injector at {point!r} never fired — the "
                    "scenario exercised nothing",
                )
            )
            return violations
        manager_a.wal.injector = None
        lost = manager_a.wal.drop_buffered_tail()
        # Ecosystem A is abandoned unclosed: that is what a crash means.

        eco_b, pub_b, sub_b, manager_b, _ = _durability_scenario_eco(
            data_dir, fsync
        )
        report = manager_b.restore()
        if report.unrecoverable:
            violations.append(
                Violation(
                    INV_DURABLE,
                    f"restore after a {point!r} crash reported "
                    f"unrecoverable: {report.error}",
                )
            )
            return violations
        sub_b.subscriber.drain()
        audit = sub_b.audit_replication()
        if not audit.in_sync:
            result = sub_b.repair_replication(report=audit)
            if not result.verified_in_sync:
                violations.append(
                    Violation(
                        INV_DURABLE,
                        f"replicas still divergent after a {point!r} crash, "
                        f"restore (replayed={report.replayed}, "
                        f"lost={lost} buffered records) and targeted repair",
                    )
                )
    finally:
        if manager_b is not None:
            manager_b.close()
        shutil.rmtree(data_dir, ignore_errors=True)
    return violations


def _durability_kill_child(data_dir: str, conn: Any) -> None:
    """Child half of the kill-restart scenario: WAL with a *hard*
    injector armed, so the Nth append SIGKILLs this process mid-write.
    Anything sent over ``conn`` is a failure diagnostic — a healthy run
    dies before reaching it."""
    from repro.durability.wal import CrashInjector

    try:
        eco, pub, sub, manager, doc_cls = _durability_scenario_eco(
            data_dir, "off"
        )
        manager.wal.injector = CrashInjector(
            "after-append", after_records=9, hard=True
        )
        for i in range(64):
            with pub.controller():
                doc_cls.create(name=f"kill-{i}", value=i)
        conn.send(("survived", None))
    except Exception as exc:  # pragma: no cover - diagnostics only
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except OSError:
            pass


def durability_kill_restart_scenario(timeout: float = 30.0) -> List[Violation]:
    """The uncatchable crash: a child process dies by genuine SIGKILL
    mid-append, and the parent restores from the orphaned data dir.

    No ``finally`` blocks run in the child, no buffers get the chance
    to flush politely — exactly the failure the WAL exists for. The
    parent verifies the death was really ``-SIGKILL`` (a clean exit
    means the injector never fired), then restores, drains, and audits
    the replicas to digest-equality."""
    import multiprocessing
    import shutil
    import signal
    import tempfile

    data_dir = tempfile.mkdtemp(prefix="repro-conf-kill-")
    violations: List[Violation] = []
    manager = None
    try:
        ctx = multiprocessing.get_context("fork")
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=_durability_kill_child,
            args=(data_dir, child_conn),
            name="conformance-kill-child",
        )
        process.start()
        child_conn.close()
        process.join(timeout)
        if process.is_alive():
            process.terminate()
            process.join(5.0)
            violations.append(
                Violation(
                    INV_DURABLE,
                    f"kill-restart child hung past {timeout:.0f}s instead "
                    "of dying at its crash point",
                )
            )
            return violations
        if process.exitcode != -signal.SIGKILL:
            detail = ""
            if parent_conn.poll(0):
                try:
                    detail = f" ({parent_conn.recv()})"
                except EOFError:
                    pass
            violations.append(
                Violation(
                    INV_DURABLE,
                    f"child exited {process.exitcode} instead of dying by "
                    f"SIGKILL{detail}",
                )
            )
            return violations

        eco, pub, sub, manager, _ = _durability_scenario_eco(data_dir, "off")
        report = manager.restore()
        if report.unrecoverable:
            violations.append(
                Violation(
                    INV_DURABLE,
                    f"restore after SIGKILL reported unrecoverable: "
                    f"{report.error}",
                )
            )
            return violations
        if not report.replayed and report.snapshot_id is None:
            violations.append(
                Violation(
                    INV_DURABLE,
                    "restore after SIGKILL recovered nothing: no snapshot "
                    "and an empty WAL tail",
                )
            )
            return violations
        sub.subscriber.drain()
        audit = sub.audit_replication()
        if not audit.in_sync:
            result = sub.repair_replication(report=audit)
            if not result.verified_in_sync:
                violations.append(
                    Violation(
                        INV_DURABLE,
                        "replicas still divergent after SIGKILL, restore "
                        f"(replayed={report.replayed}) and targeted repair",
                    )
                )
    finally:
        if manager is not None:
            manager.close()
        shutil.rmtree(data_dir, ignore_errors=True)
    return violations


def _cdc_scenario_eco(data_dir: str) -> Tuple[Any, ...]:
    """The durability fixture with the publisher's CDC front-end armed:
    raw writes go through the transactional outbox and the poller tails
    them into the ordinary publisher path."""
    eco, pub, sub, manager, doc_cls = _durability_scenario_eco(
        data_dir, "off"
    )
    pub.enable_outbox()
    return eco, pub, sub, manager, doc_cls


def cdc_poll_crash_scenario(point: str, writes: int = 8) -> List[Violation]:
    """Crash the CDC poller at one poll crash point, then prove a fresh
    restore over the same data dir re-tails the outbox without losing a
    single committed raw write.

    ``before-publish``/``after-publish`` crash mid-tail (the cursor
    checkpoint has not been written yet — recovery leans on the cursor
    piggybacked onto the ``out`` WAL records); ``after-checkpoint``
    crashes once the checkpoint record is durable. In every case the
    restored ecosystem must drain to digest-equal replicas with the
    cursor caught up to the outbox tail."""
    import shutil
    import tempfile

    from repro.cdc import PollCrash
    from repro.durability.wal import SimulatedCrash

    after = 1 if point == "after-checkpoint" else 3
    data_dir = tempfile.mkdtemp(prefix="repro-conf-cdc-")
    violations: List[Violation] = []
    manager_b = None
    try:
        eco_a, pub_a, sub_a, manager_a, doc_cls = _cdc_scenario_eco(data_dir)
        raw = pub_a.raw_session()
        for i in range(writes):
            raw.insert(doc_cls, {"name": f"cdc-{i}", "value": i})
        pub_a.cdc_poller.injector = PollCrash(point, after=after)
        crashed = False
        try:
            eco_a.cdc.poll_all()
        except SimulatedCrash:
            crashed = True
        if not crashed:
            violations.append(
                Violation(
                    INV_CDC,
                    f"poll crash injector at {point!r} never fired — the "
                    "scenario exercised nothing",
                )
            )
            return violations
        manager_a.wal.drop_buffered_tail()
        # Ecosystem A is abandoned unclosed, cursor checkpoint possibly
        # missing: that is what a poller crash means.

        eco_b, pub_b, sub_b, manager_b, _ = _cdc_scenario_eco(data_dir)
        report = manager_b.restore()
        if report.unrecoverable:
            violations.append(
                Violation(
                    INV_CDC,
                    f"restore after a {point!r} poll crash reported "
                    f"unrecoverable: {report.error}",
                )
            )
            return violations
        eco_b.drain_all()
        poller_b = pub_b.cdc_poller
        if not poller_b.idle():
            violations.append(
                Violation(
                    INV_CDC,
                    f"{poller_b.backlog()} outbox entries still unpublished "
                    f"after restore from a {point!r} poll crash "
                    f"(cursor={poller_b.cursor})",
                )
            )
        audit = sub_b.audit_replication()
        if not audit.in_sync:
            result = sub_b.repair_replication(report=audit)
            if not result.verified_in_sync:
                violations.append(
                    Violation(
                        INV_CDC,
                        f"replicas still divergent after a {point!r} poll "
                        f"crash, restore (replayed={report.replayed}) and "
                        "targeted repair",
                    )
                )
        sub_mapper = sub_b.registry.get("Doc").__mapper__
        sub_rows = len(sub_mapper._do_where({}, None, None))
        if sub_rows != writes:
            violations.append(
                Violation(
                    INV_CDC,
                    f"subscriber holds {sub_rows}/{writes} raw-written rows "
                    f"after a {point!r} poll crash and restore",
                )
            )
    finally:
        if manager_b is not None:
            manager_b.close()
        shutil.rmtree(data_dir, ignore_errors=True)
    return violations


def _cdc_kill_child(data_dir: str, conn: Any) -> None:
    """Child half of the CDC kill-restart scenario: raw-write a batch,
    then tail it with a *hard* poll injector armed — the Nth publish
    SIGKILLs this process mid-tail."""
    from repro.cdc import PollCrash

    try:
        eco, pub, sub, manager, doc_cls = _cdc_scenario_eco(data_dir)
        raw = pub.raw_session()
        for i in range(16):
            raw.insert(doc_cls, {"name": f"kill-{i}", "value": i})
        pub.cdc_poller.injector = PollCrash(
            "after-publish", after=5, hard=True
        )
        eco.cdc.poll_all()
        conn.send(("survived", None))
    except Exception as exc:  # pragma: no cover - diagnostics only
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except OSError:
            pass


def cdc_kill_restart_scenario(
    timeout: float = 30.0, writes: int = 16
) -> List[Violation]:
    """The acceptance crash: SIGKILL the process hosting the CDC poller
    mid-tail, restore over the same data dir, and prove digest-equal
    replicas with zero lost outbox entries."""
    import multiprocessing
    import shutil
    import signal
    import tempfile

    data_dir = tempfile.mkdtemp(prefix="repro-conf-cdc-kill-")
    violations: List[Violation] = []
    manager = None
    try:
        ctx = multiprocessing.get_context("fork")
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=_cdc_kill_child,
            args=(data_dir, child_conn),
            name="conformance-cdc-kill-child",
        )
        process.start()
        child_conn.close()
        process.join(timeout)
        if process.is_alive():
            process.terminate()
            process.join(5.0)
            violations.append(
                Violation(
                    INV_CDC,
                    f"cdc kill-restart child hung past {timeout:.0f}s "
                    "instead of dying at its poll crash point",
                )
            )
            return violations
        if process.exitcode != -signal.SIGKILL:
            detail = ""
            if parent_conn.poll(0):
                try:
                    detail = f" ({parent_conn.recv()})"
                except EOFError:
                    pass
            violations.append(
                Violation(
                    INV_CDC,
                    f"cdc child exited {process.exitcode} instead of dying "
                    f"by SIGKILL{detail}",
                )
            )
            return violations

        eco, pub, sub, manager, _ = _cdc_scenario_eco(data_dir)
        report = manager.restore()
        if report.unrecoverable:
            violations.append(
                Violation(
                    INV_CDC,
                    f"restore after poller SIGKILL reported unrecoverable: "
                    f"{report.error}",
                )
            )
            return violations
        eco.drain_all()
        pub_mapper = pub.registry.get("Doc").__mapper__
        pub_rows = len(pub_mapper._do_where({}, None, None))
        if pub_rows != writes:
            violations.append(
                Violation(
                    INV_CDC,
                    f"{writes - pub_rows} raw writes lost to the poller "
                    f"SIGKILL: publisher holds {pub_rows}/{writes} rows "
                    "after restore",
                )
            )
        if not pub.cdc_poller.idle():
            violations.append(
                Violation(
                    INV_CDC,
                    f"{pub.cdc_poller.backlog()} outbox entries still "
                    "unpublished after restore from poller SIGKILL",
                )
            )
        audit = sub.audit_replication()
        if not audit.in_sync:
            result = sub.repair_replication(report=audit)
            if not result.verified_in_sync:
                violations.append(
                    Violation(
                        INV_CDC,
                        "replicas still divergent after poller SIGKILL, "
                        f"restore (replayed={report.replayed}) and targeted "
                        "repair",
                    )
                )
    finally:
        if manager is not None:
            manager.close()
        shutil.rmtree(data_dir, ignore_errors=True)
    return violations


def run_directed_scenarios() -> Dict[str, List[Violation]]:
    """All directed scenarios; the CLI runs these before sweeping."""
    return {
        "queue.pop-deadline": pop_deadline_scenario(),
        "fleet.idle-deadline": fleet_idle_deadline_scenario(),
        "drain.no-leaked-deliveries": drain_leak_scenario(),
        "flow.unsafe-coalesce-rejected": flow_coalesce_safety_scenario(),
        "durability.crash-after-append":
            durability_crash_point_scenario("after-append"),
        "durability.crash-before-fsync":
            durability_crash_point_scenario("before-fsync"),
        "durability.crash-before-ack":
            durability_crash_point_scenario("before-ack"),
        "durability.kill-restart": durability_kill_restart_scenario(),
        "cdc.poller-crash-before-checkpoint":
            cdc_poll_crash_scenario("after-publish"),
        "cdc.poller-crash-after-checkpoint":
            cdc_poll_crash_scenario("after-checkpoint"),
        "cdc.kill-restart": cdc_kill_restart_scenario(),
    }
