"""``python -m repro conformance`` — the delivery-semantics smoke sweep.

Two shapes:

- ``conformance --seeds N [--mode M]`` — run the directed scenarios,
  then sweep N seeds per delivery mode (each seed once plain, once
  with crash-recovery, once with flow control — coalescing + batched
  apply — once with durability — WAL every transition, then prove a
  fresh restore reproduces the live state — and a slice with broker
  faults). This is the CI smoke step. Every failing schedule prints
  the exact CLI line that replays it.
- ``conformance --seed K --mode M [--crash --flow --durability ...]`` —
  replay one schedule and dump its violations and trace tail. This is
  the line the sweep prints when something fails.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.delivery import CAUSAL, GLOBAL, WEAK
from repro.runtime.conformance.harness import (
    ScheduleConfig,
    ScheduleResult,
    default_matrix,
    run_schedule,
)
from repro.runtime.conformance.scenarios import run_directed_scenarios


def _int_flag(args: List[str], name: str, default: Optional[int]) -> Optional[int]:
    if name in args:
        return int(args[args.index(name) + 1])
    return default


def _str_flag(args: List[str], name: str, default: Optional[str]) -> Optional[str]:
    if name in args:
        return args[args.index(name) + 1]
    return default


def _report_failure(result: ScheduleResult) -> None:
    print(f"FAIL {result.config.describe()} ({result.steps} steps)")
    for violation in result.violations:
        print(f"  {violation}")
    print(f"  replay: {result.replay_command()}")


def conformance_command(args: List[str]) -> int:
    mode = _str_flag(args, "--mode", None)
    seed = _int_flag(args, "--seed", None)
    base = ScheduleConfig(
        mode=mode or CAUSAL,
        seed=seed or 0,
        workers=_int_flag(args, "--workers", 3),
        messages=_int_flag(args, "--messages", 10),
        crash_recovery="--crash" in args,
        faults=_int_flag(args, "--faults", 0),
        generation_bump="--generation-bump" in args,
        queue_limit=_int_flag(args, "--queue-limit", None),
        hash_space=_int_flag(args, "--hash-space", None),
        flow="--flow" in args,
        durability="--durability" in args,
        views="--views" in args,
        cdc="--cdc" in args,
    )

    if seed is not None:
        # Single-schedule replay: full detail.
        result = run_schedule(base)
        print(f"schedule {base.describe()}: {result.steps} steps")
        for key, value in sorted(result.stats.items()):
            print(f"  {key}: {value}")
        if result.ok:
            print("OK: all delivery-semantics invariants held")
            return 0
        for violation in result.violations:
            print(f"VIOLATION {violation}")
        print("trace tail:")
        for line in result.trace[-30:]:
            print(f"  {line}")
        return 1

    failures = 0

    print(
        "directed scenarios (pop deadline, fleet deadline, drain leak, "
        "unsafe coalesce, durability crash points):"
    )
    for name, violations in run_directed_scenarios().items():
        if violations:
            failures += 1
            print(f"  FAIL {name}")
            for violation in violations:
                print(f"    {violation}")
        else:
            print(f"  ok   {name}")

    seeds = _int_flag(args, "--seeds", 50)
    modes = [mode] if mode else [CAUSAL, GLOBAL, WEAK]
    configs = default_matrix(seeds, modes=modes, base=base)
    print(
        f"sweeping {len(configs)} schedules "
        f"({seeds} seeds x {len(modes)} modes, "
        "plain + crash-recovery + flow + durability + views + cdc):"
    )
    checked = 0
    for config in configs:
        result = run_schedule(config)
        checked += 1
        if not result.ok:
            failures += 1
            _report_failure(result)
    print(f"{checked} schedules checked, {failures} failure(s)")
    return 1 if failures else 0
