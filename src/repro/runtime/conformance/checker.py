"""Delivery-semantics checker: the §3.2 invariants, asserted per event.

The checker subscribes to the scheduler's event stream (every
``yield_point``/``observe_point`` on the hot path) and maintains its own
model of what a correct execution may do. It is deliberately
independent of the code under test: e.g. the causal invariant is
re-checked *at apply time* from the version store, so a racing
generation flush that invalidates a dependency between the
subscriber's own check and its apply is caught even though the
subscriber believed the check passed.

Invariant identifiers (stable, used by tests and the CLI):

- ``causal.dependency-order`` — no message applies before its
  dependency counters are satisfied (causal and global modes).
- ``global.total-order`` — messages of one publisher apply in total
  (global-object version) order.
- ``weak.fresh-or-discard`` — weak mode applies fresh versions in
  per-object order and only discards genuinely stale ones.
- ``counters.monotone`` — version-store counters never step backwards
  outside a legitimate generation flush.
- ``generation.flush-safety`` — dependency counters are never flushed
  while an older-generation message is in flight.
- ``delivery.at-least-once`` — every message that entered the queue is
  applied or explicitly accounted (give-up, decommission).
- ``delivery.dedup`` — no message uid is applied more than once.
- ``worker.no-silent-death`` — no worker dies on an unexpected
  exception from the queue/subscriber layer.
- ``queue.pop-deadline`` — a blocking pop never returns early on a
  spurious wakeup or stolen notify.
- ``fleet.idle-deadline`` — ``WorkerFleet.wait_until_idle`` respects
  the caller's timeout as a whole-call deadline.
- ``drain.no-leaked-deliveries`` — ``drain`` returns popped-but-pending
  messages when the queue is decommissioned mid-round.
- ``flow.admission-safety`` — graduated backpressure only sheds
  weak-mode publishes (causal/global messages carry dependency bumps
  downstream messages wait on; shedding one wedges the stream), and
  every coalesced-away message is accounted through its survivor.
- ``views.read-freshness`` — a cache hit is never served at a version
  older than the key's last invalidation (no cached read is staler
  than an applied write), and at quiescence every derived read model
  equals a from-scratch recomputation over the base rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.delivery import GLOBAL, GLOBAL_OBJECT, WEAK, effective_dependencies

INV_CAUSAL = "causal.dependency-order"
INV_GLOBAL = "global.total-order"
INV_WEAK = "weak.fresh-or-discard"
INV_MONOTONE = "counters.monotone"
INV_GATE = "generation.flush-safety"
INV_ALO = "delivery.at-least-once"
INV_DEDUP = "delivery.dedup"
INV_WORKER = "worker.no-silent-death"
INV_POP = "queue.pop-deadline"
INV_IDLE = "fleet.idle-deadline"
INV_LEAK = "drain.no-leaked-deliveries"
INV_FLOW = "flow.admission-safety"
INV_DURABLE = "durability.restore-equivalence"
INV_VIEW = "views.read-freshness"
INV_CDC = "cdc.outbox-delivery"
INV_SAGA = "saga.inventory-balance"


@dataclass
class Violation:
    """One broken invariant, named and located in the schedule."""

    invariant: str
    detail: str
    step: int = -1
    worker: str = ""

    def __str__(self) -> str:
        where = f" @step {self.step} [{self.worker}]" if self.step >= 0 else ""
        return f"{self.invariant}{where}: {self.detail}"


@dataclass
class _MessageFate:
    message: Any
    finishes: int = 0


class DeliveryChecker:
    """Event-driven checker for one conformance schedule."""

    def __init__(self, subscriber: Any) -> None:
        self.subscriber = subscriber
        self.store = subscriber.service.subscriber_version_store
        self.hasher = subscriber.service.ecosystem.hasher
        self.violations: List[Violation] = []
        #: uid -> fate, for every message that actually entered the queue.
        self.entered: Dict[str, _MessageFate] = {}
        #: uid -> message, popped but not yet acked/nacked.
        self.in_flight: Dict[str, Any] = {}
        self.gave_up: set = set()
        self.crashed: set = set()
        #: absorbed uid -> survivor uid (flow-control coalescing).
        self.coalesced_into: Dict[str, str] = {}
        #: uids the admission layer shed (never entered the queue).
        self.shed: set = set()
        self.duplicates = 0
        self.tolerated_acks = 0
        self.tolerated_nacks = 0
        self.queue_decommissioned = False
        #: Set by the harness when the schedule runs with views: the
        #: quiescent aggregate check compares incremental vs recomputed.
        self.views: Optional[Any] = None
        #: Set by the harness on CDC schedules: the publisher's outbox
        #: table, checked at quiescence (every entry published, cursor
        #: caught up to the max sequence).
        self.outbox: Optional[Any] = None
        self.cdc_poller: Optional[Any] = None
        #: Set by the saga workload: a callable returning a list of
        #: (detail,) strings for every INV_SAGA imbalance at quiescence.
        self.saga: Optional[Any] = None
        #: key -> latest invalidation version (the applied frontier).
        self.cache_frontier: Dict[str, int] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self._counter_floor: Dict[str, int] = {}
        self._weak_applied: Dict[str, int] = {}
        self._last_global_version: Optional[int] = None
        self._step = -1
        self._worker = ""

    # -- wiring --------------------------------------------------------------

    def on_event(self, step: int, worker: str, label: str, info: Dict[str, Any]) -> None:
        self._step, self._worker = step, worker
        handler = getattr(self, "_on_" + label.replace(".", "_"), None)
        if handler is not None:
            handler(info)

    def violation(self, invariant: str, detail: str) -> None:
        self.violations.append(
            Violation(invariant, detail, step=self._step, worker=self._worker)
        )

    # -- queue lifecycle -----------------------------------------------------

    def _on_queue_published(self, info: Dict[str, Any]) -> None:
        message = info["message"]
        self.entered.setdefault(message.uid, _MessageFate(message))

    def _on_queue_decommissioned(self, info: Dict[str, Any]) -> None:
        self.queue_decommissioned = True

    def _on_queue_popped(self, info: Dict[str, Any]) -> None:
        self.in_flight[info["message"].uid] = info["message"]

    def _on_queue_acked(self, info: Dict[str, Any]) -> None:
        self.in_flight.pop(info["message"].uid, None)

    def _on_queue_nacked(self, info: Dict[str, Any]) -> None:
        self.in_flight.pop(info["message"].uid, None)

    def _on_queue_ack_tolerated(self, info: Dict[str, Any]) -> None:
        self.tolerated_acks += 1
        self.in_flight.pop(info["message"].uid, None)

    def _on_queue_nack_tolerated(self, info: Dict[str, Any]) -> None:
        self.tolerated_nacks += 1
        self.in_flight.pop(info["message"].uid, None)

    def _on_queue_requeued(self, info: Dict[str, Any]) -> None:
        # Crash recovery returned every unacked delivery to the queue.
        self.in_flight.clear()

    # -- flow control ---------------------------------------------------------

    def _on_queue_shed(self, info: Dict[str, Any]) -> None:
        """Credit-exhausted admission may only shed weak-mode traffic:
        a causal/global message carries counter bumps that downstream
        messages wait on, so shedding it wedges the stream (the §4.4
        kill remains the last resort for those)."""
        message = info["message"]
        self.shed.add(message.uid)
        if self._mode_for(message) != WEAK:
            self.violation(
                INV_FLOW,
                f"admission shed {self._mode_for(message)}-mode message "
                f"{message.uid} — only weak-mode publishes are sheddable",
            )

    def _on_queue_coalesced(self, info: Dict[str, Any]) -> None:
        """An absorbed message is accounted through its survivor: track
        the merge edge so finalize() can follow it."""
        message, survivor = info["message"], info["into"]
        self.entered.setdefault(message.uid, _MessageFate(message))
        self.coalesced_into[message.uid] = survivor.uid

    # -- read path (views + cache) --------------------------------------------

    def _on_cache_invalidate(self, info: Dict[str, Any]) -> None:
        """The apply path advanced a key's watermark: every cached
        entry below it is now unservable. Invalidation events are
        emitted inside the cache's atomic KV script, so event order
        here equals version order."""
        key, version = info["key"], info["version"]
        self.cache_frontier[key] = max(
            self.cache_frontier.get(key, 0), version
        )

    def _on_cache_read(self, info: Dict[str, Any]) -> None:
        """A *hit* served a cached entry at ``version``; serving below
        the key's invalidation frontier means a reader observed state
        older than a write the subscriber already applied. Misses load
        from the authoritative store and may *fill* stale (the next
        read reloads) — only what is served is checked."""
        key, version, hit = info["key"], info["version"], info["hit"]
        if not hit:
            self.cache_misses += 1
            return
        self.cache_hits += 1
        frontier = self.cache_frontier.get(key, 0)
        if version < frontier:
            self.violation(
                INV_VIEW,
                f"cache hit on {key!r} served version {version} below the "
                f"invalidation frontier {frontier} — a cached read is "
                "staler than an already-applied write",
            )

    # -- apply-side invariants -----------------------------------------------

    def _mode_for(self, message: Any) -> str:
        return self.subscriber.app_modes.get(message.app, WEAK)

    def _on_apply(self, info: Dict[str, Any]) -> None:
        """Causal/global: dependencies must hold *at the moment of apply*,
        not merely at the subscriber's own earlier check."""
        message = info["message"]
        mode = self._mode_for(message)
        if (
            mode == WEAK
            or message.bootstrap
            or message.repair
            or self.subscriber.bootstrapping
        ):
            return
        object_deps = set(self.subscriber._object_deps(message))
        required = dict(
            effective_dependencies(message.dependencies, mode, object_deps)
        )
        required.update(message.external_dependencies)
        missing = self.store.missing(required)
        if missing:
            self.violation(
                INV_CAUSAL,
                f"message {message.uid} applied with unsatisfied dependencies "
                f"{missing} (required vs current) — counters changed between "
                f"the subscriber's check and its apply",
            )
        if mode == GLOBAL:
            # Apply events are ordered identically to the engine writes
            # (no yield point sits between the two), so the global-object
            # versions seen here must be strictly increasing.
            version = message.dependencies.get(self.hasher.hash(GLOBAL_OBJECT))
            if version is not None:
                last = self._last_global_version
                if last is not None and version <= last:
                    self.violation(
                        INV_GLOBAL,
                        f"message {message.uid} (global version {version}) "
                        f"applied after version {last} — total order broken",
                    )
                if last is None or version > last:
                    self._last_global_version = version

    def _on_msg_finished(self, info: Dict[str, Any]) -> None:
        message = info["message"]
        fate = self.entered.get(message.uid)
        if fate is not None:
            fate.finishes += 1
            if fate.finishes > 1:
                self.violation(
                    INV_DEDUP,
                    f"message {message.uid} applied {fate.finishes} times — "
                    "at-least-once redelivery must deduplicate",
                )

    def _on_dedup_duplicate(self, info: Dict[str, Any]) -> None:
        self.duplicates += 1

    def _on_apply_weak(self, info: Dict[str, Any]) -> None:
        dep, version = info["dep"], info["version"]
        last = self._weak_applied.get(dep)
        if last is not None and version <= last:
            self.violation(
                INV_WEAK,
                f"object {dep}: version {version} applied after {last} — a "
                "stale write landed on top of a fresher one",
            )
        self._weak_applied[dep] = max(version, last if last is not None else version)

    def _on_apply_weak_discarded(self, info: Dict[str, Any]) -> None:
        dep, version = info["dep"], info["version"]
        if version >= self.store.ops(dep):
            self.violation(
                INV_WEAK,
                f"object {dep}: fresh version {version} discarded "
                f"(counter only at {self.store.ops(dep)})",
            )

    # -- counters and generation flushes -------------------------------------

    def _on_counter_bumped(self, info: Dict[str, Any]) -> None:
        dep, value = info["dep"], info["value"]
        floor = self._counter_floor.get(dep, 0)
        if value <= floor:
            self.violation(
                INV_MONOTONE,
                f"counter {dep} moved to {value}, at or below its prior "
                f"value {floor}",
            )
        self._counter_floor[dep] = value

    def _on_counter_fast_forward(self, info: Dict[str, Any]) -> None:
        dep, value = info["dep"], info["value"]
        floor = self._counter_floor.get(dep, 0)
        if value < floor:
            self.violation(
                INV_MONOTONE,
                f"counter {dep} fast-forwarded backwards: {floor} -> {value}",
            )
        self._counter_floor[dep] = value

    def _on_generation_flush(self, info: Dict[str, Any]) -> None:
        app, generation = info["app"], info["generation"]
        older = [
            message.uid
            for message in self.in_flight.values()
            if message.app == app and message.generation < generation
        ]
        if older:
            self.violation(
                INV_GATE,
                f"dependency counters for {app!r} flushed for generation "
                f"{generation} while older-generation deliveries {older} "
                "were still in flight (popped, unacked)",
            )
        self._counter_floor.clear()
        self._weak_applied.clear()
        self._last_global_version = None

    def _on_store_flush(self, info: Dict[str, Any]) -> None:
        self._counter_floor.clear()
        self._weak_applied.clear()

    # -- worker fates ---------------------------------------------------------

    def _on_worker_gave_up(self, info: Dict[str, Any]) -> None:
        self.gave_up.add(info["message"].uid)

    def _on_worker_crashed(self, info: Dict[str, Any]) -> None:
        self.crashed.add(info["message"].uid)

    # -- end-of-schedule accounting ------------------------------------------

    def _accounted(self, uid: str) -> bool:
        """Applied or given up — following coalesce edges: an absorbed
        message is delivered exactly when its (transitive) survivor is."""
        seen = set()
        while uid not in seen:
            seen.add(uid)
            fate = self.entered.get(uid)
            if (fate is not None and fate.finishes > 0) or uid in self.gave_up:
                return True
            survivor = self.coalesced_into.get(uid)
            if survivor is None:
                return False
            uid = survivor
        return False

    def finalize(self) -> List[Violation]:
        """At-least-once: every enqueued message must be applied or
        explicitly accounted for by the end of a quiescent schedule."""
        self._step, self._worker = -1, ""
        for uid in sorted(self.entered):
            if not self._accounted(uid) and not self.queue_decommissioned:
                self.violations.append(
                    Violation(
                        INV_ALO,
                        f"message {uid} entered the queue but was never "
                        "applied, given up on, or decommissioned away",
                    )
                )
        if self.views is not None:
            # The aggregate half of INV_VIEW: after quiescence every
            # incrementally maintained view must equal the same
            # projection recomputed from a full base-row scan.
            for spec in self.views.specs():
                incremental = self.views.canonical(spec.name)
                recomputed = self.views.recompute_canonical(spec.name)
                if incremental != recomputed:
                    self.violations.append(
                        Violation(
                            INV_VIEW,
                            f"view {spec.name!r} diverged from recomputation: "
                            f"incremental={incremental!r} "
                            f"recomputed={recomputed!r}",
                        )
                    )
        if self.outbox is not None and self.cdc_poller is not None:
            # INV_CDC: a quiescent schedule may not leave committed
            # outbox entries untailed — every raw write must have been
            # fed to the publisher path before the run declared idle.
            pending = self.outbox.backlog(self.cdc_poller.cursor)
            if pending:
                self.violations.append(
                    Violation(
                        INV_CDC,
                        f"{pending} committed outbox entries never "
                        f"published (cursor={self.cdc_poller.cursor})",
                    )
                )
        if self.saga is not None:
            for detail in self.saga():
                self.violations.append(Violation(INV_SAGA, detail))
        return self.violations
