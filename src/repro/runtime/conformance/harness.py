"""The conformance harness: seeded schedules over a real pub→sub pair.

One :func:`run_schedule` call builds a fresh two-service ecosystem
(Mongo-like publisher, Postgres-like subscriber, one published model),
derives a publisher *workload script* from the seed (creates, updates,
optional broker drops and a generation bump), and drives it together
with N virtual subscriber workers under the
:class:`~repro.runtime.conformance.scheduler.InterleavingScheduler`.
The :class:`~repro.runtime.conformance.checker.DeliveryChecker` listens
to every event and asserts the §3.2 delivery-semantics invariants.

Everything observable is derived from the seed: the workload script,
the worker interleaving, and therefore the normalized trace. Running
the same :class:`ScheduleConfig` twice yields byte-identical traces —
that is what makes a failing seed a *replayable* bug report.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.core.delivery import CAUSAL, GLOBAL, WEAK, validate_mode
from repro.errors import QueueDecommissioned
from repro.runtime.conformance.checker import (
    INV_DURABLE,
    INV_WORKER,
    DeliveryChecker,
    Violation,
)
from repro.runtime.conformance.scheduler import (
    InterleavingScheduler,
    SchedulerStuck,
)
from repro.runtime.interleave import observe_point, yield_point

#: Invariant name for schedules that never quiesce (wedged scheduler).
INV_QUIESCENCE = "schedule.quiescence"


@dataclass(frozen=True)
class ScheduleConfig:
    """Everything that determines one schedule, and nothing else."""

    mode: str = CAUSAL
    seed: int = 0
    workers: int = 3
    messages: int = 10
    max_deliveries: int = 12
    #: Crash one worker mid-message and run a recovery worker that
    #: calls ``requeue_unacked`` (at-least-once + dedup coverage).
    crash_recovery: bool = False
    #: Drop this many routed messages at the broker (§6.5 loss).
    faults: int = 0
    #: Publisher version-store death mid-stream (§4.4 generation bump).
    generation_bump: bool = False
    #: Decommission threshold for the subscriber queue (None = unbounded).
    queue_limit: Optional[int] = None
    #: Dependency-hash space (None = full names).
    hash_space: Optional[int] = None
    #: Enable the flow-control subsystem: coalescing at publish plus
    #: pop_many/process_batch subscriber workers (batched group commit).
    flow: bool = False
    #: Enable the durability subsystem: every schedule WALs to a
    #: throwaway data dir, and after quiescence a second fresh
    #: ecosystem restores from it — restored state must be
    #: byte-equivalent to the live one (``durability.restore-equivalence``).
    durability: bool = False
    #: Enable the read path: the subscriber maintains derived views
    #: behind the versioned cache, a dedicated reader worker races
    #: cache-aside reads against the apply stream, and the checker
    #: asserts ``views.read-freshness`` (no stale cached read; at
    #: quiescence every aggregate equals recomputation).
    views: bool = False
    #: Enable the CDC front-end: a seeded slice of the publisher's
    #: workload bypasses the ORM through ``raw_session`` (transactional
    #: outbox), a dedicated poller worker tails the outbox into the
    #: publisher path, and the checker asserts ``cdc.outbox-delivery``
    #: (no committed entry left unpublished at quiescence) on top of
    #: the ordinary mode invariants.
    cdc: bool = False
    max_steps: int = 50_000

    def describe(self) -> str:
        extras = []
        if self.crash_recovery:
            extras.append("crash")
        if self.faults:
            extras.append(f"faults={self.faults}")
        if self.generation_bump:
            extras.append("genbump")
        if self.queue_limit is not None:
            extras.append(f"qlimit={self.queue_limit}")
        if self.flow:
            extras.append("flow")
        if self.durability:
            extras.append("durability")
        if self.views:
            extras.append("views")
        if self.cdc:
            extras.append("cdc")
        suffix = f" [{','.join(extras)}]" if extras else ""
        return f"mode={self.mode} seed={self.seed}{suffix}"


@dataclass
class ScheduleResult:
    """Outcome of one schedule: violations, stats and a normalized trace."""

    config: ScheduleConfig
    violations: List[Violation]
    trace: List[str]
    steps: int
    stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def replay_command(self) -> str:
        """The CLI line that replays exactly this schedule."""
        parts = [
            "python -m repro conformance",
            f"--mode {self.config.mode}",
            f"--seed {self.config.seed}",
            f"--workers {self.config.workers}",
            f"--messages {self.config.messages}",
        ]
        if self.config.crash_recovery:
            parts.append("--crash")
        if self.config.faults:
            parts.append(f"--faults {self.config.faults}")
        if self.config.generation_bump:
            parts.append("--generation-bump")
        if self.config.queue_limit is not None:
            parts.append(f"--queue-limit {self.config.queue_limit}")
        if self.config.hash_space is not None:
            parts.append(f"--hash-space {self.config.hash_space}")
        if self.config.flow:
            parts.append("--flow")
        if self.config.durability:
            parts.append("--durability")
        if self.config.views:
            parts.append("--views")
        if self.config.cdc:
            parts.append("--cdc")
        return " ".join(parts)


def _build_script(config: ScheduleConfig, rng: random.Random) -> List[Tuple]:
    """Derive the publisher workload from the seed: object creates
    followed by seeded updates, with optional fault/generation ops
    spliced in at seeded positions."""
    n_objects = max(2, config.messages // 3)
    ops: List[Tuple] = [("create", i) for i in range(n_objects)]
    for _ in range(max(0, config.messages - n_objects)):
        ops.append(("update", rng.randrange(n_objects)))
    if config.cdc:
        # A seeded slice of the workload bypasses the ORM: raw creates
        # and updates over a disjoint object-id space, riffled into the
        # ORM ops preserving each stream's internal order (a raw update
        # must follow its raw create).
        n_raw = max(1, config.messages // 4)
        raw_ops: List[Tuple] = [("raw-create", i) for i in range(n_raw)]
        for _ in range(max(1, config.messages // 3) - n_raw):
            raw_ops.append(("raw-update", rng.randrange(n_raw)))
        merged: List[Tuple] = []
        i = j = 0
        while i < len(ops) or j < len(raw_ops):
            take_raw = j < len(raw_ops) and (
                i >= len(ops) or rng.random() < 0.4
            )
            if take_raw:
                merged.append(raw_ops[j])
                j += 1
            else:
                merged.append(ops[i])
                i += 1
        ops = merged
    if config.generation_bump:
        ops.insert(rng.randrange(n_objects, len(ops) + 1), ("bump",))
    if config.faults:
        ops.insert(rng.randrange(1, len(ops) + 1), ("drop", config.faults))
    return ops


class ConformanceHarness:
    """One schedule: ecosystem, workload, virtual workers, checker."""

    def __init__(self, config: ScheduleConfig) -> None:
        validate_mode(config.mode)
        self.config = config
        # Distinct stream from the scheduler's RNG, but derived from the
        # same seed by pure integer arithmetic (str/tuple seeding would
        # go through hash(), which is per-process randomized).
        self.workload_rng = random.Random(config.seed * 0x9E3779B1 + 0x5EED)
        self.script = _build_script(config, self.workload_rng)
        self.publisher_done = False
        self.crashed_uids: set = set()
        self._raw_rows: List[Dict[str, Any]] = []
        self._phase1_workers = 0
        self._instances: List[Any] = []
        # Trace normalization: message uids embed a process-global
        # counter, so raw uids differ across runs. First-seen aliasing
        # (m0, m1, ...) makes traces comparable run-to-run.
        self._aliases: Dict[str, str] = {}
        self.trace_lines: List[str] = []
        self._build_ecosystem()
        self.checker = DeliveryChecker(self.sub.subscriber)
        if config.views:
            self.checker.views = self.sub.views
        if config.cdc:
            self.checker.outbox = self.pub.outbox
            self.checker.cdc_poller = self.pub.cdc_poller
        self.scheduler = InterleavingScheduler(
            seed=config.seed, max_steps=config.max_steps
        )
        self.scheduler.listeners.append(self.checker.on_event)
        self.scheduler.listeners.append(self._trace_listener)

    # -- ecosystem ------------------------------------------------------------

    def _make_ecosystem(self) -> Tuple[Any, Any, Any, Any]:
        """Build one instance of the schedule's topology (the restore-
        equivalence check rebuilds it to restore into)."""
        from repro.core import Ecosystem
        from repro.databases.document import MongoLike
        from repro.databases.relational import PostgresLike
        from repro.orm import Field, Model
        from repro.versionstore import DependencyHasher

        config = self.config
        eco = Ecosystem(
            queue_limit=config.queue_limit,
            seed=config.seed,
            hasher=DependencyHasher(config.hash_space),
        )
        pub = eco.service(
            "pub", database=MongoLike("pub-db"), delivery_mode=config.mode
        )

        @pub.model(publish=["name", "value"], name="Doc")
        class PubDoc(Model):
            name = Field(str)
            value = Field(int, default=0)

        sub = eco.service("sub", database=PostgresLike("sub-db"))

        @sub.model(
            subscribe={
                "from": "pub",
                "fields": ["name", "value"],
                "mode": config.mode,
            },
            name="Doc",
        )
        class SubDoc(Model):
            name = Field(str)
            value = Field(int, default=0)

        if config.flow:
            from repro.runtime.flow import FlowConfig

            # Small batches keep schedules short; admission capacity
            # comes from the queue limit (admission stays off on
            # unbounded queues, coalescing/batching still exercise).
            eco.enable_flow(FlowConfig(batch_max=3, throttle_delay=0.0))
        if config.views:
            from repro.views import CountView, SumView, TopKView

            views = sub.enable_views()
            views.declare(CountView("docs", "Doc"))
            views.declare(SumView("total", "Doc", "value"))
            views.declare(TopKView("top", "Doc", "value", k=3))
        if config.cdc:
            pub.enable_outbox()
        return eco, pub, sub, PubDoc

    def _build_ecosystem(self) -> None:
        self.eco, self.pub, self.sub, self.doc_cls = self._make_ecosystem()
        self._durability_dir: Optional[str] = None
        if self.config.durability:
            import tempfile

            self._durability_dir = tempfile.mkdtemp(prefix="repro-conf-wal-")
            self.eco.enable_durability(data_dir=self._durability_dir)

    # -- durability: restore equivalence --------------------------------------

    @staticmethod
    def _normalized_durable_state(state: Dict[str, Any]) -> Dict[str, Any]:
        """Applied-uid *membership* is the durable contract (the dedup
        check is a set lookup); the deque's order reflects worker
        scheduling, not state, so normalize it before comparing."""
        import copy

        state = copy.deepcopy(state)
        for service_state in state.get("services", {}).values():
            service_state["applied_uids"] = sorted(
                service_state.get("applied_uids", [])
            )
        return state

    def _check_restore_equivalence(self) -> List[Violation]:
        """The durability invariant: a second fresh ecosystem restoring
        from this schedule's WAL must reproduce the live ecosystem's
        durable state exactly — rows, counters, generations, queue
        backlog, shed ledgers, dedup membership."""
        manager = self.eco.durability
        manager.wal.sync()
        live = self._normalized_durable_state(manager._capture_state())
        eco2, _pub2, _sub2, _doc2 = self._make_ecosystem()
        manager2 = eco2.enable_durability(data_dir=self._durability_dir)
        violations: List[Violation] = []
        try:
            report = manager2.restore()
            if report.unrecoverable:
                violations.append(
                    Violation(
                        INV_DURABLE,
                        "restore reported unrecoverable after a clean "
                        f"schedule: {report.error}",
                    )
                )
                return violations
            restored = self._normalized_durable_state(
                manager2._capture_state()
            )
            for section in ("generations", "services", "queues", "cdc"):
                if restored.get(section) != live.get(section):
                    violations.append(
                        Violation(
                            INV_DURABLE,
                            f"restored {section} diverge from the live "
                            f"ecosystem: live={live.get(section)!r} "
                            f"restored={restored.get(section)!r}",
                        )
                    )
        finally:
            manager2.close()
        return violations

    def _cleanup_durability(self) -> None:
        import shutil

        if self.eco.durability is not None:
            self.eco.durability.close()
        if self._durability_dir is not None:
            shutil.rmtree(self._durability_dir, ignore_errors=True)
            self._durability_dir = None

    # -- trace normalization --------------------------------------------------

    def _alias(self, message: Any) -> str:
        alias = self._aliases.get(message.uid)
        if alias is None:
            alias = f"m{len(self._aliases)}"
            self._aliases[message.uid] = alias
        return alias

    def _trace_listener(
        self, step: int, worker: str, label: str, info: Dict[str, Any]
    ) -> None:
        parts = [worker, label]
        for key in sorted(info):
            value = info[key]
            if key in ("message", "blocked_on", "into"):
                parts.append(f"{key}={self._alias(value)}")
            elif key == "required":
                rendered = ",".join(
                    f"{dep}:{version}" for dep, version in sorted(value.items())
                )
                parts.append(f"required={rendered}")
            elif isinstance(value, (str, int, float, bool)):
                parts.append(f"{key}={value}")
        self.trace_lines.append(" ".join(parts))

    # -- virtual workers ------------------------------------------------------

    def _publisher_loop(self) -> None:
        try:
            for op in self.script:
                yield_point("pub.op", kind=op[0])
                if op[0] == "create":
                    with self.pub.controller():
                        self._instances.append(
                            self.doc_cls.create(name=f"doc-{op[1]}", value=0)
                        )
                elif op[0] == "update":
                    instance = self._instances[op[1]]
                    with self.pub.controller():
                        instance.value += 1
                        instance.save()
                elif op[0] == "raw-create":
                    raw = self.pub.raw_session()
                    row = raw.insert(
                        self.doc_cls, {"name": f"raw-{op[1]}", "value": 0}
                    )
                    self._raw_rows.append(row)
                    observe_point("pub.raw_write", kind="create")
                elif op[0] == "raw-update":
                    raw = self.pub.raw_session()
                    row = self._raw_rows[op[1]]
                    updated = raw.update(
                        self.doc_cls, row["id"],
                        {"value": (row.get("value") or 0) + 1},
                    )
                    self._raw_rows[op[1]] = updated
                    observe_point("pub.raw_write", kind="update")
                elif op[0] == "bump":
                    self.pub.recover_publisher_version_store()
                    observe_point("pub.generation_bump")
                elif op[0] == "drop":
                    self.eco.broker.drop_next(op[1])
                    observe_point("pub.drop_armed", count=op[1])
        finally:
            self.publisher_done = True
            observe_point("pub.done")

    def _drained(self) -> bool:
        """Quiescence test for subscriber workers: publisher finished,
        nothing queued, and anything still unacked belongs to a crashed
        worker (the recovery worker's problem, not ours)."""
        if not self.publisher_done:
            return False
        if self.config.cdc and not self.pub.cdc_poller.idle():
            # Committed outbox entries the poller has not published yet
            # are pending work, not quiescence.
            return False
        queue = self.sub.subscriber.queue
        if len(queue):
            return False
        unacked = {message.uid for message in queue.peek_unacked()}
        return unacked <= self.crashed_uids

    def _subscriber_loop(self, wid: str, abandon_after: Optional[int] = None) -> None:
        if self.config.flow and abandon_after is None:
            # Flow schedules drain through pop_many/process_batch;
            # crash workers keep the single-message path (they must
            # abandon one precise in-flight delivery).
            self._subscriber_loop_batched(wid)
            return
        subscriber = self.sub.subscriber
        queue = subscriber.queue
        handled = 0
        while True:
            try:
                yield_point("worker.tick", worker=wid)
                try:
                    message = queue.pop(timeout=0.0)
                except QueueDecommissioned:
                    observe_point("worker.decommissioned", worker=wid)
                    return
                if message is None:
                    if self._drained():
                        observe_point("worker.drained", worker=wid)
                        return
                    continue
                done = subscriber.process_message(message, wait_timeout=0.0)
                handled += 1
                if abandon_after is not None and handled >= abandon_after:
                    # Simulated worker crash: exit without ack/nack; the
                    # delivery stays in the unacked table until recovery
                    # calls requeue_unacked().
                    self.crashed_uids.add(message.uid)
                    observe_point("worker.crashed", worker=wid, message=message)
                    return
                if done:
                    queue.ack(message)
                elif message.delivery_count >= self.config.max_deliveries:
                    # §6.5 give-up semantics: a dependency that will
                    # never arrive (dropped message) must not wedge the
                    # worker forever.
                    observe_point("worker.gave_up", worker=wid, message=message)
                    queue.ack(message)
                else:
                    queue.nack(message)
            except QueueDecommissioned:
                # Ack/nack of a delivery the decommission cleared: the
                # fixed queue tolerates the ack; a decommission raised
                # from a nested pop path lands here and the worker exits
                # cleanly instead of dying silently.
                observe_point("worker.decommissioned", worker=wid)
                return
            except Exception as exc:  # noqa: BLE001 — the invariant itself
                self.checker.violation(
                    INV_WORKER,
                    f"worker {wid} died on unexpected {type(exc).__name__}: {exc}",
                )
                return

    def _subscriber_loop_batched(self, wid: str) -> None:
        """The flow-control drain loop: ``pop_many`` batches verified
        and applied through ``process_batch`` (group commit), with the
        same give-up and decommission semantics as the single path."""
        subscriber = self.sub.subscriber
        queue = subscriber.queue
        batch_max = self.eco.flow.config.batch_max
        while True:
            try:
                yield_point("worker.tick", worker=wid)
                try:
                    batch = queue.pop_many(batch_max, timeout=0.0)
                except QueueDecommissioned:
                    observe_point("worker.decommissioned", worker=wid)
                    return
                if not batch:
                    if self._drained():
                        observe_point("worker.drained", worker=wid)
                        return
                    continue
                done, retry, _errors = subscriber.process_batch(
                    batch, wait_timeout=0.0
                )
                for message in done:
                    queue.ack(message)
                for message in retry:
                    if message.delivery_count >= self.config.max_deliveries:
                        observe_point("worker.gave_up", worker=wid, message=message)
                        queue.ack(message)
                    else:
                        queue.nack(message)
            except QueueDecommissioned:
                observe_point("worker.decommissioned", worker=wid)
                return
            except Exception as exc:  # noqa: BLE001 — the invariant itself
                self.checker.violation(
                    INV_WORKER,
                    f"worker {wid} died on unexpected {type(exc).__name__}: {exc}",
                )
                return

    def _cdc_loop(self, wid: str) -> None:
        """The CDC poller as a scheduled virtual worker: tails the
        publisher's outbox into the publisher path, interleaved with the
        ORM workload and the subscriber workers by the scheduler."""
        poller = self.pub.cdc_poller
        while True:
            yield_point("cdc.tick", worker=wid)
            published = poller.poll()
            if published:
                observe_point("cdc.published", worker=wid, count=published)
            if self.publisher_done and poller.idle():
                observe_point("cdc.drained", worker=wid)
                return

    def _reader_loop(self, wid: str) -> None:
        """The read-path worker: races cache-aside view reads against
        the apply stream. Every read emits ``cache.read`` events the
        checker holds against the invalidation frontier — a hit served
        below it is the INV_VIEW staleness violation."""
        views = self.sub.views
        names = [spec.name for spec in views.specs()]
        while True:
            yield_point("reader.tick", worker=wid)
            for name in names:
                views.read(name)
            if self._drained():
                observe_point("reader.drained", worker=wid)
                return

    def _phase1_loop(self, wid: str, abandon_after: Optional[int]) -> None:
        try:
            self._subscriber_loop(wid, abandon_after)
        finally:
            self._phase1_workers -= 1

    def _recovery_loop(self) -> None:
        queue = self.sub.subscriber.queue
        while not (self.publisher_done and self._phase1_workers == 0):
            yield_point("recovery.wait")
        requeued = queue.requeue_unacked()
        observe_point("recovery.requeued", count=requeued)
        self.crashed_uids.clear()
        self._subscriber_loop("rec")

    # -- running --------------------------------------------------------------

    def run(self) -> ScheduleResult:
        config = self.config
        self.scheduler.add_worker("pub", self._publisher_loop)
        abandon: Dict[str, Optional[int]] = {}
        for i in range(config.workers):
            wid = f"w{i}"
            abandon[wid] = None
        if config.crash_recovery and config.workers:
            # Exactly one worker crashes, after a seeded number of
            # messages; the rest drain normally.
            abandon["w0"] = self.workload_rng.randint(1, 3)
        self._phase1_workers = config.workers
        for i in range(config.workers):
            wid = f"w{i}"
            self.scheduler.add_worker(
                wid,
                lambda wid=wid: self._phase1_loop(wid, abandon[wid]),
            )
        if config.crash_recovery:
            self.scheduler.add_worker("rec", self._recovery_loop)
        if config.views:
            self.scheduler.add_worker(
                "reader", lambda: self._reader_loop("reader")
            )
        if config.cdc:
            self.scheduler.add_worker("cdc", lambda: self._cdc_loop("cdc"))

        stuck: Optional[SchedulerStuck] = None
        try:
            self.scheduler.run()
        except SchedulerStuck as exc:
            stuck = exc
        if stuck is not None:
            self.checker.violations.append(
                Violation(INV_QUIESCENCE, str(stuck), step=self.scheduler.steps)
            )
        for name, error in self.scheduler.worker_errors().items():
            self.checker.violation(
                INV_WORKER,
                f"virtual worker {name} escaped with "
                f"{type(error).__name__}: {error}",
            )
        violations = self.checker.finalize()
        if self.config.durability:
            try:
                violations.extend(self._check_restore_equivalence())
            finally:
                self._cleanup_durability()
        # A broken delivery invariant is an anomaly by definition: feed
        # the ecosystem's flight recorder so a failing seed leaves the
        # same JSONL evidence as a production incident.
        recorder = getattr(self.eco, "recorder", None)
        if recorder is not None:
            for violation in violations:
                recorder.anomaly(
                    "conformance.violation",
                    invariant=violation.invariant,
                    detail=violation.detail,
                    step=violation.step,
                    schedule=config.describe(),
                )
        queue = self.sub.subscriber.queue
        stats = {
            "script_ops": len(self.script),
            "entered": len(self.checker.entered),
            "applied": sum(
                1 for fate in self.checker.entered.values() if fate.finishes
            ),
            "duplicates": self.checker.duplicates,
            "gave_up": len(self.checker.gave_up),
            "tolerated_acks": self.checker.tolerated_acks,
            "tolerated_nacks": self.checker.tolerated_nacks,
            "coalesced": len(self.checker.coalesced_into),
            "shed": len(self.checker.shed),
            "cache_hits": self.checker.cache_hits,
            "cache_misses": self.checker.cache_misses,
            "decommissioned": queue.decommissioned if queue is not None else False,
            "steps": self.scheduler.steps,
        }
        return ScheduleResult(
            config=config,
            violations=violations,
            trace=self.trace_lines,
            steps=self.scheduler.steps,
            stats=stats,
        )


def run_schedule(config: ScheduleConfig) -> ScheduleResult:
    """Run one seeded schedule; the sole entry point tests and the CLI use."""
    return ConformanceHarness(config).run()


def replay_twice(config: ScheduleConfig) -> Tuple[ScheduleResult, ScheduleResult]:
    """Run the same config twice (fresh ecosystem each time); the two
    normalized traces must be identical — the determinism self-test."""
    return run_schedule(config), run_schedule(config)


def default_matrix(
    seeds: int,
    modes: Optional[List[str]] = None,
    base: Optional[ScheduleConfig] = None,
) -> List[ScheduleConfig]:
    """The sweep the CI smoke step runs: for every mode and seed, one
    plain schedule, a crash-recovery variant, a flow-control variant
    (coalescing + batched group-commit apply), a durability variant
    (WAL everything, then prove restore-equivalence), and a read-path
    variant (views + cache racing a reader worker, with flow on so
    coalescing and batched apply must preserve invalidation), and a CDC
    variant (a seeded slice of the workload bypasses the ORM through
    the transactional outbox, with a poller worker racing the
    subscribers), with broker faults folded into a slice of the
    seeds."""
    base = base or ScheduleConfig()
    configs: List[ScheduleConfig] = []
    for mode in modes or [CAUSAL, GLOBAL, WEAK]:
        for seed in range(seeds):
            faults = 1 if seed % 4 == 3 else 0
            configs.append(
                replace(base, mode=mode, seed=seed, faults=faults)
            )
            configs.append(
                replace(
                    base,
                    mode=mode,
                    seed=seed,
                    crash_recovery=True,
                    faults=0,
                )
            )
            configs.append(
                replace(
                    base,
                    mode=mode,
                    seed=seed,
                    flow=True,
                    faults=faults,
                    crash_recovery=False,
                )
            )
            configs.append(
                replace(
                    base,
                    mode=mode,
                    seed=seed,
                    durability=True,
                    faults=faults,
                    crash_recovery=False,
                    flow=False,
                )
            )
            configs.append(
                replace(
                    base,
                    mode=mode,
                    seed=seed,
                    views=True,
                    flow=True,
                    faults=0,
                    crash_recovery=False,
                    durability=False,
                )
            )
            configs.append(
                replace(
                    base,
                    mode=mode,
                    seed=seed,
                    cdc=True,
                    faults=0,
                    crash_recovery=False,
                    flow=False,
                    durability=False,
                    views=False,
                )
            )
    return configs


def sweep(configs: List[ScheduleConfig]) -> List[ScheduleResult]:
    """Run every config; results in input order."""
    return [run_schedule(config) for config in configs]
