"""A seeded, replayable interleaving scheduler for real threaded code.

Runs N *virtual workers* (plain Python callables exercising the real
``SubscriberQueue``/``SynapseSubscriber``/version-store code) on real
threads, but cooperatively: exactly one worker runs at a time, and a
worker only pauses at the explicit :func:`repro.runtime.interleave.yield_point`
boundaries instrumented into the delivery hot path. At every boundary
the scheduler's seeded RNG picks which worker runs next, so

- the same seed replays the *identical* interleaving (the recorded
  event trace is byte-for-byte equal across runs), and
- no wall-clock sleep is involved anywhere — workers switch on events,
  never on timing.

This is the standard systematic-concurrency-testing construction
(cf. CHESS / dBug): real code, serialized execution, seeded schedule
exploration. The safety-net timeouts below only fire when a schedule
genuinely wedges (e.g. a yield point erroneously placed inside a lock);
they turn a hang into a diagnosable :class:`SchedulerStuck`.
"""

from __future__ import annotations

import random
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.runtime.interleave import install_hook, uninstall_hook


class SchedulerStuck(ReproError):
    """A scheduled worker stopped reaching yield points (deadlock/livelock)."""


class _AbortWorker(BaseException):
    """Raised inside a worker to unwind it during teardown."""


class _Slot:
    """Scheduler-side state of one virtual worker."""

    def __init__(self, name: str, target: Callable[[], None]) -> None:
        self.name = name
        self.target = target
        self.thread: Optional[threading.Thread] = None
        #: Set by the scheduler to let the worker run to its next yield.
        self.go = threading.Event()
        #: Set by the worker when it paused (or finished/errored).
        self.paused = threading.Event()
        self.done = False
        self.error: Optional[BaseException] = None
        self.aborted = False


class InterleavingScheduler:
    """Deterministic cooperative scheduler over yield-point instrumented code.

    ::

        sched = InterleavingScheduler(seed=7)
        sched.add_worker("pub", publish_script)
        sched.add_worker("w0", worker_loop)
        sched.run()          # same seed -> same sched.trace, always
    """

    def __init__(
        self,
        seed: int,
        max_steps: int = 50_000,
        step_timeout: float = 20.0,
    ) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.max_steps = max_steps
        self.step_timeout = step_timeout
        #: Every recorded event: (worker, label, info). Pause events and
        #: observe-only events both land here, in execution order.
        self.trace: List[Tuple[str, str, Dict[str, Any]]] = []
        #: Listeners called synchronously on every event (the
        #: delivery-semantics checker registers here). Exactly one
        #: worker runs at any moment, so listeners need no locking.
        self.listeners: List[Callable[[int, str, str, Dict[str, Any]], None]] = []
        self.steps = 0
        self._slots: Dict[str, _Slot] = {}
        self._by_ident: Dict[int, _Slot] = {}
        self._ident_lock = threading.Lock()

    def add_worker(self, name: str, target: Callable[[], None]) -> None:
        if name in self._slots:
            raise ValueError(f"duplicate worker name {name!r}")
        self._slots[name] = _Slot(name, target)

    # -- event hook (runs on worker threads) ---------------------------------

    def _hook(self, label: str, info: Dict[str, Any], pause: bool) -> None:
        with self._ident_lock:
            slot = self._by_ident.get(threading.get_ident())
        if slot is None:
            return  # not one of ours (e.g. the controlling thread)
        self._record(slot.name, label, info)
        if pause:
            self._pause(slot)

    def _record(self, worker: str, label: str, info: Dict[str, Any]) -> None:
        step = len(self.trace)
        self.trace.append((worker, label, info))
        for listener in self.listeners:
            listener(step, worker, label, info)

    def _pause(self, slot: _Slot) -> None:
        slot.paused.set()
        slot.go.wait()
        slot.go.clear()
        if slot.aborted:
            raise _AbortWorker()

    # -- worker thread main --------------------------------------------------

    def _worker_main(self, slot: _Slot) -> None:
        with self._ident_lock:
            self._by_ident[threading.get_ident()] = slot
        try:
            # Park until the scheduler picks this worker the first time.
            self._pause(slot)
            slot.target()
        except _AbortWorker:
            pass
        except BaseException as exc:  # noqa: BLE001 — reported, not swallowed
            slot.error = exc
        finally:
            slot.done = True
            slot.paused.set()

    # -- the scheduling loop (runs on the calling thread) --------------------

    def run(self) -> None:
        """Drive every worker to completion under the seeded schedule."""
        if not self._slots:
            return
        # Bind once: each ``self._hook`` attribute access builds a new
        # bound-method object, and uninstall_hook matches by identity.
        hook = self._hook
        install_hook(hook)
        try:
            for slot in self._slots.values():
                slot.thread = threading.Thread(
                    target=self._worker_main,
                    args=(slot,),
                    name=f"conformance-{slot.name}",
                    daemon=True,
                )
                slot.thread.start()
            for slot in self._slots.values():
                if not slot.paused.wait(self.step_timeout):
                    raise SchedulerStuck(
                        f"worker {slot.name!r} never reached its start point"
                    )
            while True:
                candidates = sorted(
                    name for name, slot in self._slots.items() if not slot.done
                )
                if not candidates:
                    break
                slot = self._slots[self.rng.choice(candidates)]
                slot.paused.clear()
                slot.go.set()
                if not slot.paused.wait(self.step_timeout):
                    raise SchedulerStuck(
                        f"worker {slot.name!r} blocked off-schedule after "
                        f"{self.steps} steps (yield point inside a lock, or a "
                        f"real wait entered with the scheduler active?)"
                    )
                self.steps += 1
                if self.steps > self.max_steps:
                    raise SchedulerStuck(
                        f"schedule did not quiesce within {self.max_steps} steps"
                    )
        finally:
            self._abort_stragglers()
            uninstall_hook(hook)

    def _abort_stragglers(self) -> None:
        """Teardown: unwind workers still parked at a yield point."""
        for slot in self._slots.values():
            if not slot.done:
                slot.aborted = True
                slot.go.set()
        for slot in self._slots.values():
            if slot.thread is not None:
                slot.thread.join(timeout=self.step_timeout)

    # -- results -------------------------------------------------------------

    def worker_errors(self) -> Dict[str, BaseException]:
        return {
            name: slot.error
            for name, slot in self._slots.items()
            if slot.error is not None
        }
