"""Deterministic delivery-semantics conformance harness.

Three pieces (see ``docs/observability.md`` for the operator view):

- :mod:`~repro.runtime.conformance.scheduler` — a seeded, replayable
  interleaving scheduler driving virtual workers over the *real*
  queue/subscriber/version-store code, switching threads only at
  explicit yield points (no wall-clock sleeps anywhere).
- :mod:`~repro.runtime.conformance.checker` — an event-driven checker
  asserting the §3.2 delivery invariants (causal dependency order,
  global total order, weak fresh-or-discard, counter monotonicity,
  generation-flush safety, at-least-once + dedup).
- :mod:`~repro.runtime.conformance.harness` — seeded schedules over a
  fresh two-service ecosystem, plus the sweep matrix the CI smoke step
  runs (``python -m repro conformance --seeds N``).
"""

from repro.runtime.conformance.checker import (
    INV_ALO,
    INV_CAUSAL,
    INV_DEDUP,
    INV_FLOW,
    INV_GATE,
    INV_GLOBAL,
    INV_IDLE,
    INV_LEAK,
    INV_MONOTONE,
    INV_POP,
    INV_VIEW,
    INV_WEAK,
    INV_WORKER,
    DeliveryChecker,
    Violation,
)
from repro.runtime.conformance.harness import (
    INV_QUIESCENCE,
    ConformanceHarness,
    ScheduleConfig,
    ScheduleResult,
    default_matrix,
    replay_twice,
    run_schedule,
    sweep,
)
from repro.runtime.conformance.scheduler import (
    InterleavingScheduler,
    SchedulerStuck,
)

__all__ = [
    "ConformanceHarness",
    "DeliveryChecker",
    "InterleavingScheduler",
    "ScheduleConfig",
    "ScheduleResult",
    "SchedulerStuck",
    "Violation",
    "default_matrix",
    "replay_twice",
    "run_schedule",
    "sweep",
    "INV_ALO",
    "INV_CAUSAL",
    "INV_DEDUP",
    "INV_FLOW",
    "INV_GATE",
    "INV_GLOBAL",
    "INV_IDLE",
    "INV_LEAK",
    "INV_MONOTONE",
    "INV_POP",
    "INV_QUIESCENCE",
    "INV_VIEW",
    "INV_WEAK",
    "INV_WORKER",
]
