"""Interleaving yield points for the deterministic conformance harness.

The delivery hot path (queue pop/ack/nack, dependency checks, applies,
counter bumps, generation flushes) calls :func:`yield_point` at every
boundary where a thread switch changes observable semantics. By default
the hook is ``None`` and the call is one module-global load plus an
``is None`` check — nothing else, no locks, no allocation — so
production code pays effectively zero cost.

``repro.runtime.conformance`` installs a scheduler hook that (a) records
the event for the delivery-semantics checker and (b) suspends the
calling worker until the seeded scheduler picks it again, turning real
threaded code into a deterministic, replayable interleaving.

Yield points MUST sit outside any lock: the scheduler runs exactly one
worker at a time, so a worker suspended while holding a lock would
deadlock the next worker that touches the same structure.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional

#: Installed hook, or None (the production default). The hook receives
#: ``(label, info_dict, pause)`` and is called synchronously on the
#: yielding thread; it decides itself whether the thread is one it
#: schedules. ``pause=False`` events are record-only: they may be
#: emitted while the caller holds a lock, so the hook must not suspend
#: the thread (a suspended lock holder would deadlock the scheduler).
_hook: Optional[Callable[[str, dict, bool], None]] = None
_install_lock = threading.Lock()


def yield_point(label: str, **info: Any) -> None:
    """Mark an interleaving boundary on the delivery hot path.

    No-op unless a conformance scheduler is installed. Must only be
    called with no locks held.
    """
    hook = _hook
    if hook is not None:
        hook(label, info, True)


def observe_point(label: str, **info: Any) -> None:
    """Record a semantic event without offering a thread switch.

    Safe to call while holding locks — the installed hook records the
    event for the delivery-semantics checker but never suspends the
    calling thread here.
    """
    hook = _hook
    if hook is not None:
        hook(label, info, False)


def install_hook(hook: Callable[[str, dict, bool], None]) -> None:
    """Install ``hook`` as the process-wide yield-point listener."""
    global _hook
    with _install_lock:
        if _hook is not None:
            raise RuntimeError("an interleaving hook is already installed")
        _hook = hook


def uninstall_hook(hook: Callable[[str, dict, bool], None]) -> None:
    """Remove ``hook``; tolerates an already-uninstalled hook."""
    global _hook
    with _install_lock:
        if _hook is hook:
            _hook = None


def hook_installed() -> bool:
    return _hook is not None
