"""Semantics-aware message coalescing.

Consecutive queued writes to the same ``(app, model, id)`` collapse into
one message where the delivery mode allows it:

- **weak**: always safe. Subscribers apply fresh-or-discard per object,
  so delivering only the newest payload (with per-key max dependency
  versions) is indistinguishable from delivering both and discarding
  the older one.
- **causal / global**: safe only when the dependency union is preserved.
  The merged message carries, per dependency key, the max of the
  survivor's version and the absorbed's version discounted by the
  survivor's own increments (the absorbed write was emitted assuming
  the survivor had applied), and the *sum* of the constituents' counter
  increments (so downstream messages that counted on both bumps still
  become satisfiable). The
  structural hazard is a dependency cycle through a message queued
  *between* the two candidates (or in flight), in either direction:
  an intervener that depends on a key the earlier candidate increments
  would wait on a bump that now sits behind the intervener itself, and
  an absorbed (newer) write that depends on a key an intervener
  increments would — merged to the survivor's *earlier* position —
  wait on a bump queued behind itself. Such merges are rejected; an
  adjacent pair with no conflicting intervener is safe.

The survivor is always the *earlier* message: it keeps its uid,
position, and ``published_at`` (so lag measurements stay honest), and
records the absorbed uids in ``coalesced_uids`` for at-least-once
accounting.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.broker.message import Message


def coalesce_key(message: Message) -> Optional[Tuple[str, str, Any]]:
    """Index key for coalescing, or ``None`` if the message is not a
    candidate (multi-op transactions, deletes, bootstrap/repair traffic
    keep their own envelope)."""
    if message.bootstrap or message.repair:
        return None
    if len(message.operations) != 1:
        return None
    operation = message.operations[0]
    if operation.get("operation") == "delete":
        return None
    types = operation.get("types") or []
    if not types:
        return None
    return (message.app, types[0], operation.get("id"))


def dep_keys(message: Message) -> set:
    """Every dependency key a message waits on (write + external)."""
    return set(message.dependencies) | set(message.external_dependencies)


def counter_increments(message: Message) -> Dict[str, int]:
    """How much applying this message bumps each dependency counter
    (see :meth:`Message.counter_increments`)."""
    return dict(message.counter_increments())


def merge_into(survivor: Message, absorbed: Message) -> None:
    """Fold ``absorbed`` (the newer write) into ``survivor`` in place.

    Attributes merge newest-wins, the operation stays a create if the
    survivor was one (the row must still come into existence),
    dependency versions take the per-key max, and counter increments
    sum so version arithmetic downstream is preserved.
    """
    old_op = survivor.operations[0]
    new_op = absorbed.operations[0]
    attributes = dict(old_op.get("attributes") or {})
    attributes.update(new_op.get("attributes") or {})
    merged_op = dict(new_op)
    merged_op["attributes"] = attributes
    if old_op.get("operation") == "create":
        merged_op["operation"] = "create"
    survivor.operations = [merged_op]

    surv_incr = counter_increments(survivor)
    increments = dict(surv_incr)
    for dep, amount in counter_increments(absorbed).items():
        increments[dep] = increments.get(dep, 0) + amount
    survivor.increments = increments

    # The absorbed message's dependency versions were emitted *after*
    # the survivor's publisher-side bumps, so they assume the survivor
    # has already applied — including its own object and the shared
    # session-user key. Both now land in one atomic apply: discount the
    # survivor's increments per key, or the merged message would wait
    # on bumps it itself carries (a self-deadlock). Per-key max with
    # the survivor's own requirement keeps every external prerequisite.
    for dep, version in absorbed.dependencies.items():
        version -= surv_incr.get(dep, 0)
        if version > survivor.dependencies.get(dep, -1):
            survivor.dependencies[dep] = version
    for dep, version in absorbed.external_dependencies.items():
        if version > survivor.external_dependencies.get(dep, -1):
            survivor.external_dependencies[dep] = version

    survivor.coalesced_uids.append(absorbed.uid)
    survivor.coalesced_uids.extend(absorbed.coalesced_uids)
    if survivor.trace is None and absorbed.trace is not None:
        survivor.trace = absorbed.trace


def raised_waits(survivor: Message, absorbed: Message) -> set:
    """Dependency keys on which a merge would wait *harder* than the
    survivor already does at its queue position.

    Per key, the absorbed write's requirement is discounted by the
    survivor's own increments — exactly as :func:`merge_into` will
    record it — and kept only where it exceeds the survivor's current
    requirement. Those are the waits the merge would move from the
    absorbed message's tail position up to the survivor's earlier one;
    if the bump satisfying such a wait is carried by a message queued
    in between, the merged survivor deadlocks behind itself.
    """
    surv_incr = counter_increments(survivor)
    waits = set()
    for dep, version in absorbed.dependencies.items():
        if version - surv_incr.get(dep, 0) > survivor.dependencies.get(dep, -1):
            waits.add(dep)
    for dep, version in absorbed.external_dependencies.items():
        if version > survivor.external_dependencies.get(dep, -1):
            waits.add(dep)
    return waits


def union_conflicts(
    survivor: Message, intervener: Message, raised: frozenset = frozenset()
) -> bool:
    """Would coalescing past ``intervener`` break the dependency union?

    Two directed cycles, either of which rejects the merge:

    - the merged message's counter bumps land only when *it* applies,
      so an intervener that waits on any key the survivor increments
      would wait on a bump queued behind itself;
    - the absorbed write's newly raised waits (``raised``, see
      :func:`raised_waits`) move up to the survivor's earlier position,
      so an intervener that *increments* any of those keys would carry
      a bump the merged survivor waits on from ahead of it.

    Conservative: any key overlap rejects the merge.
    """
    if set(survivor.dependencies) & dep_keys(intervener):
        return True
    return bool(raised and raised & set(counter_increments(intervener)))
