"""Flow-control tunables.

One frozen config object shared by admission control (watermarks,
credits), coalescing and the batched-apply path. Defaults are chosen so
``FlowConfig()`` is safe everywhere: no throttle sleeps (deterministic
tests), credit capacity inherited from each queue's ``max_size``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class FlowConfig:
    """Tunables for the flow-control subsystem.

    Admission: credits refill to ``high_watermark x capacity`` whenever
    the queue drains below ``low_watermark x capacity``; once they are
    exhausted the queue is in the graduated zone between the high
    watermark and the §4.4 kill cliff, where weak-mode publishes are
    shed and stronger modes are admitted-but-throttled. ``capacity``
    overrides the per-queue ``max_size`` as the credit base; with both
    unset, admission is disabled (coalescing and batching still run).
    """

    high_watermark: float = 0.75
    low_watermark: float = 0.5
    capacity: Optional[int] = None
    shed_weak: bool = True
    #: Seconds the broker stalls a publish while a target queue is out
    #: of credits (scaled by how deep into the red zone it is). 0 keeps
    #: publishes non-blocking — the default for tests and conformance.
    throttle_delay: float = 0.0

    coalesce: bool = True
    #: How far back from the tail of the queue the causal/global safety
    #: scan will look for the coalesce candidate before giving up.
    coalesce_window: int = 32

    batch_apply: bool = True
    batch_min: int = 1
    batch_max: int = 16
    #: AIMD: batch size grows by ``aimd_increase`` after a full clean
    #: batch and shrinks by ``aimd_decrease`` when dependency retries or
    #: apply errors dominate.
    aimd_increase: int = 2
    aimd_decrease: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.low_watermark < self.high_watermark <= 1.0:
            raise ValueError(
                "need 0 < low_watermark < high_watermark <= 1, got "
                f"low={self.low_watermark} high={self.high_watermark}"
            )
        if self.capacity is not None and self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        if not 1 <= self.batch_min <= self.batch_max:
            raise ValueError(
                f"need 1 <= batch_min <= batch_max, got "
                f"min={self.batch_min} max={self.batch_max}"
            )
        if self.aimd_increase < 1:
            raise ValueError(f"aimd_increase must be >= 1, got {self.aimd_increase}")
        if not 0.0 < self.aimd_decrease < 1.0:
            raise ValueError(
                f"aimd_decrease must be in (0, 1), got {self.aimd_decrease}"
            )
        if self.throttle_delay < 0:
            raise ValueError(f"throttle_delay must be >= 0, got {self.throttle_delay}")
