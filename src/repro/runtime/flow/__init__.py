"""Flow control for the publish→route→apply pipeline.

Three cooperating pieces, enabled together via
``Ecosystem.enable_flow``:

- :mod:`repro.runtime.flow.admission` — credit-based graduated
  backpressure in front of the §4.4 kill cliff (shed weak publishes,
  throttle stronger modes, kill only as the last resort);
- :mod:`repro.runtime.flow.coalesce` — semantics-aware collapsing of
  consecutive queued writes to the same object;
- :mod:`repro.runtime.flow.batch` — AIMD sizing for the dependency-
  aware batched apply (``SubscriberQueue.pop_many`` +
  ``SynapseSubscriber.process_batch``).

See ``docs/flow_control.md`` for the full design.
"""

from repro.runtime.flow.admission import (
    ADMIT,
    SHED,
    STATE_OPEN,
    STATE_SHEDDING,
    STATE_THROTTLED,
    FlowController,
    QueueFlow,
)
from repro.runtime.flow.batch import BatchSizer
from repro.runtime.flow.coalesce import (
    coalesce_key,
    counter_increments,
    merge_into,
    raised_waits,
    union_conflicts,
)
from repro.runtime.flow.config import FlowConfig

__all__ = [
    "ADMIT",
    "SHED",
    "STATE_OPEN",
    "STATE_SHEDDING",
    "STATE_THROTTLED",
    "BatchSizer",
    "FlowConfig",
    "FlowController",
    "QueueFlow",
    "coalesce_key",
    "counter_increments",
    "merge_into",
    "raised_waits",
    "union_conflicts",
]
