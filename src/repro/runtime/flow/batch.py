"""AIMD batch sizing for the batched-apply path.

The batch size is a throughput/latency dial: big batches amortise the
dependency verification and engine transaction across many messages
(drain mode), small batches keep per-message latency low when the link
is healthy. The sizer moves it with two signals:

- **Per-batch outcome** (additive increase / multiplicative decrease):
  a full batch that applied cleanly means there is backlog worth
  draining harder; a batch dominated by dependency retries or apply
  errors means the verify work is being wasted, so back off fast.
- **Link pressure** from the PR-4 ``LagMonitor``: sustained lag over
  the SLO pushes toward ``batch_max`` regardless of batch outcomes,
  and a comfortably healthy link decays back toward ``batch_min``.
"""

from __future__ import annotations

import threading

from repro.runtime.flow.config import FlowConfig


class BatchSizer:
    """Thread-safe AIMD controller shared by a pool's workers."""

    def __init__(self, config: FlowConfig) -> None:
        self.config = config
        self._current = config.batch_min
        self._lock = threading.Lock()

    @property
    def current(self) -> int:
        with self._lock:
            return self._current

    def on_batch(self, popped: int, applied: int, failed: int) -> int:
        """Feed one batch outcome; returns the new size."""
        config = self.config
        with self._lock:
            if failed and failed * 2 >= max(1, popped):
                self._current = max(
                    config.batch_min, int(self._current * config.aimd_decrease)
                )
            elif failed == 0 and popped >= self._current:
                self._current = min(
                    config.batch_max, self._current + config.aimd_increase
                )
            return self._current

    def observe_pressure(self, pressure: float) -> int:
        """Feed a LagMonitor signal (window p99 / SLO p99).

        ``> 1`` means the link is over budget — drain harder; ``< 0.25``
        means plenty of headroom — decay toward low-latency singles.
        """
        config = self.config
        with self._lock:
            if pressure > 1.0:
                self._current = min(
                    config.batch_max, self._current + config.aimd_increase
                )
            elif pressure < 0.25 and self._current > config.batch_min:
                self._current -= 1
            return self._current
