"""Credit-based admission control and the per-queue flow state.

The §4.4 overload response is binary: a queue past ``max_size`` is
killed and the subscriber re-bootstraps. ``QueueFlow`` adds a graduated
zone in front of that cliff:

- Credits are granted up to the **high watermark** and consumed one per
  admitted publish; they refill whenever the queue drains below the
  **low watermark** (hysteresis, so the boundary does not flap).
- With credits exhausted the queue is *throttled*: publishes in weak
  mode are **shed** (safe for the data — weak subscribers tolerate
  fresh-or-discard gaps), stronger modes are always admitted but
  counted, and the broker may stall the publisher for
  ``throttle_delay`` seconds. Bootstrap and repair messages are never
  shed (mirroring their ``coalesce_key`` exclusion): shedding repair
  traffic would starve the very anti-entropy loop that heals
  shed-induced divergence, and a shed bootstrap message would leave an
  object unreplicated rather than merely stale.
- The publisher bumped its version store before the shed, so every
  shed message leaves a subscriber-side counter deficit until a later
  same-object write fast-forwards past it or anti-entropy repairs it.
  ``QueueFlow`` keeps a per-publisher ledger of those deliberate
  deficits; the lag audits reconcile against it (see
  :meth:`QueueFlow.reconcile_shed`) so intentional shedding is not
  reported as the §6.5 loss signature.
- The kill cliff itself is untouched: if pressure still reaches
  ``max_size`` the queue decommissions exactly as before, as the last
  resort.

All mutating entry points are called by ``SubscriberQueue`` under its
own lock, so ``QueueFlow`` needs no locking of its own; it must never
call a suspending yield point (the queue emits those after releasing
the lock, based on the verdicts returned here).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.broker.message import Message
from repro.core.delivery import WEAK
from repro.runtime.flow.coalesce import (
    coalesce_key,
    merge_into,
    raised_waits,
    union_conflicts,
)
from repro.runtime.flow.config import FlowConfig

#: Admission verdicts.
ADMIT = "admit"
SHED = "shed"

#: Backpressure states surfaced in ``LagMonitor.health()``.
STATE_OPEN = "open"
STATE_THROTTLED = "throttled"
STATE_SHEDDING = "shedding"


class QueueFlow:
    """Flow state for one subscriber queue: credits, the coalescing
    index, and the ``flow.<queue>.*`` instruments."""

    def __init__(
        self,
        queue_name: str,
        capacity: Optional[int],
        config: FlowConfig,
        metrics,
        mode_of,
        recorder=None,
    ) -> None:
        self.name = queue_name
        self.config = config
        self.capacity = config.capacity if config.capacity is not None else capacity
        self._mode_of = mode_of
        self._recorder = recorder
        if self.capacity is not None:
            self.high = max(1, int(self.capacity * config.high_watermark))
            self.low = int(self.capacity * config.low_watermark)
        else:
            self.high = self.low = 0
        self.credits = self.high
        self.state = STATE_OPEN
        #: (app, model, id) -> the queued message absorbing writes to
        #: that object. Entries leave on pop and on queue reset; nacked
        #: redeliveries are never re-indexed (their queue position no
        #: longer reflects publish order).
        self._index: Dict[tuple, Message] = {}
        #: publisher app -> hashed dep -> counter bumps the publisher
        #: recorded for writes this queue deliberately shed. Guarded by
        #: its own lock (unlike the rest of the flow state, it is also
        #: written from the audit threads via :meth:`reconcile_shed`).
        self._shed_deficits: Dict[str, Dict[str, int]] = {}
        self._shed_lock = threading.Lock()
        prefix = f"flow.{queue_name}"
        self.admitted = metrics.counter(f"{prefix}.admitted")
        self.shed = metrics.counter(f"{prefix}.shed")
        self.throttled = metrics.counter(f"{prefix}.throttled")
        self.coalesced = metrics.counter(f"{prefix}.coalesced")
        self.coalesce_rejected = metrics.counter(f"{prefix}.coalesce_rejected")
        self.batch_size = metrics.histogram(f"{prefix}.batch_size")
        self.credits_gauge = metrics.gauge(f"{prefix}.credits")
        self.credits_gauge.set(self.credits)

    # -- admission -----------------------------------------------------------

    def admit(self, message: Message, depth: int) -> str:
        """Admission verdict for one publish. Called under the queue lock."""
        if self.capacity is None:
            self.admitted.increment()
            return ADMIT
        if depth <= self.low and self.credits < self.high:
            self.credits = self.high
            self._set_state(STATE_OPEN)
        if self.credits > 0 and depth < self.high:
            self.credits -= 1
            self.credits_gauge.set(self.credits)
            self.admitted.increment()
            return ADMIT
        # Credits exhausted (or depth already past the high watermark):
        # the graduated zone between the high watermark and the kill
        # cliff. Bootstrap/repair traffic is exempt from shedding — it
        # is the recovery path for earlier sheds. CDC-ingested messages
        # are likewise exempt: their outbox entry is already durably
        # committed publisher-side, so shedding one would turn an
        # acknowledged raw write into silent divergence (docs/cdc.md).
        mode = self._mode_of(message.app) or WEAK
        if (
            mode == WEAK
            and self.config.shed_weak
            and not message.bootstrap
            and not message.repair
            and message.cdc is None
        ):
            self._set_state(STATE_SHEDDING)
            self.shed.increment()
            self._record_shed(message)
            return SHED
        self._set_state(STATE_THROTTLED)
        self.throttled.increment()
        self.admitted.increment()
        return ADMIT

    def _record_shed(self, message: Message) -> None:
        """Remember the counter bumps a shed message would have carried:
        the publisher already bumped its version store at publish time,
        so until repair (or a later same-object write) fast-forwards
        past them, the subscriber shows a deficit that is deliberate,
        not §6.5 loss."""
        with self._shed_lock:
            ledger = self._shed_deficits.setdefault(message.app, {})
            for dep, amount in message.counter_increments().items():
                ledger[dep] = ledger.get(dep, 0) + amount

    def reconcile_shed(
        self, app: str, deficits: Dict[str, int]
    ) -> Dict[str, int]:
        """Reconcile the shed ledger for ``app`` against the counter
        deficits a lag audit actually observed, and return the portion
        the audit should forgive.

        Per key the ledger is trimmed down to the observed deficit —
        anti-entropy repair, a later write fast-forwarding the object,
        or a re-bootstrap may have healed the key since the shed — so a
        healed entry can never linger and mask a genuinely lost later
        message. What remains is exactly the deliberate, still-unhealed
        shed debt, which the audit subtracts from its loss signal.
        """
        with self._shed_lock:
            ledger = self._shed_deficits.get(app)
            if not ledger:
                return {}
            forgiven: Dict[str, int] = {}
            for dep in list(ledger):
                remaining = min(ledger[dep], deficits.get(dep, 0))
                if remaining <= 0:
                    del ledger[dep]
                else:
                    ledger[dep] = remaining
                    forgiven[dep] = remaining
            if not ledger:
                del self._shed_deficits[app]
            return forgiven

    def shed_ledger(self) -> Dict[str, Dict[str, int]]:
        """Copy of the full shed-deficit ledger (durability snapshots)."""
        with self._shed_lock:
            return {
                app: dict(ledger)
                for app, ledger in self._shed_deficits.items()
            }

    def restore_shed(self, ledgers: Dict[str, Dict[str, int]]) -> None:
        """Adopt a restored shed-deficit ledger (crash recovery) —
        replacing wholesale: the WAL logs post-state ledgers."""
        with self._shed_lock:
            self._shed_deficits = {
                app: dict(ledger) for app, ledger in ledgers.items()
            }

    def publish_delay(self) -> float:
        """How long the broker should stall a publish right now —
        deeper into the red zone means a longer stall."""
        if self.capacity is None or self.config.throttle_delay <= 0:
            return 0.0
        if self.credits >= max(1, self.high // 4):
            return 0.0
        return self.config.throttle_delay * (1.0 - self.credits / max(1, self.high))

    def _set_state(self, state: str) -> None:
        if state == self.state:
            return
        previous, self.state = self.state, state
        if self._recorder is None:
            return
        if state == STATE_SHEDDING:
            self._recorder.anomaly(
                "flow.shedding", queue=self.name, credits=self.credits
            )
        elif previous in (STATE_SHEDDING, STATE_THROTTLED) and state == STATE_OPEN:
            self._recorder.record_event(
                "flow.recovered", queue=self.name, credits=self.credits
            )

    # -- coalescing ----------------------------------------------------------

    def coalesce(self, items, unacked, message: Message) -> Optional[Message]:
        """Try to fold ``message`` into a queued write to the same
        object. Returns the survivor on success, else ``None``.

        Called under the queue lock *before* the message is appended;
        on ``None`` the caller appends and then calls :meth:`register`.
        """
        if not self.config.coalesce:
            return None
        key = coalesce_key(message)
        if key is None:
            return None
        candidate = self._index.get(key)
        if candidate is None:
            return None
        if candidate.generation != message.generation:
            self._index.pop(key, None)
            return None
        mode = self._mode_of(message.app) or WEAK
        if mode != WEAK and not self._union_safe(candidate, message, items, unacked):
            self.coalesce_rejected.increment()
            # The newer write becomes the coalesce target for whatever
            # comes next ("consecutive" means adjacent to the tail).
            self._index.pop(key, None)
            return None
        merge_into(candidate, message)
        self.coalesced.increment()
        return candidate

    def _union_safe(self, candidate, message, items, unacked) -> bool:
        """Causal/global safety: no message between the candidate and
        the tail (and nothing in flight) may depend on a key the
        candidate increments, or increment a key the absorbed write
        would newly wait on from the candidate's earlier position —
        see ``union_conflicts`` for both directions."""
        raised = raised_waits(candidate, message)
        scanned = 0
        found = False
        for queued in reversed(items):
            if queued is candidate:
                found = True
                break
            scanned += 1
            if scanned > self.config.coalesce_window:
                return False
            if union_conflicts(candidate, queued, raised):
                return False
        if not found:
            return False
        for in_flight in unacked.values():
            if union_conflicts(candidate, in_flight, raised):
                return False
        return True

    def register(self, message: Message) -> None:
        """Index a freshly appended message as the coalesce target for
        its object."""
        if not self.config.coalesce:
            return
        key = coalesce_key(message)
        if key is not None:
            self._index[key] = message

    def on_pop(self, message: Message) -> None:
        """A popped message can no longer absorb writes."""
        if not self._index:
            return
        key = coalesce_key(message)
        if key is not None and self._index.get(key) is message:
            del self._index[key]

    def reset(self) -> None:
        """Queue cleared (kill or recommission): fresh flow state. The
        shed ledger clears too — the re-bootstrap that follows fast-
        forwards every counter past the shed debt."""
        self._index.clear()
        self.credits = self.high
        self.credits_gauge.set(self.credits)
        self.state = STATE_OPEN
        with self._shed_lock:
            self._shed_deficits.clear()


class FlowController:
    """Ecosystem-wide flow control: one :class:`QueueFlow` per
    subscriber queue, sharing a config and the metrics registry."""

    def __init__(self, config: FlowConfig, metrics, mode_of, recorder=None) -> None:
        self.config = config
        self.metrics = metrics
        self.mode_of = mode_of
        self.recorder = recorder
        self._queues: Dict[str, QueueFlow] = {}

    def for_queue(self, queue) -> QueueFlow:
        flow = self._queues.get(queue.name)
        if flow is None:
            flow = QueueFlow(
                queue.name,
                queue.max_size,
                self.config,
                self.metrics,
                self.mode_of,
                self.recorder,
            )
            self._queues[queue.name] = flow
        return flow

    def queues(self) -> Dict[str, QueueFlow]:
        return dict(self._queues)
