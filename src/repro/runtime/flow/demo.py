"""``python -m repro flow --demo`` — the flow-control subsystem live.

A weak-mode publisher floods a small bounded queue:

1. **Graduated backpressure**: admission credits drain as the queue
   fills past the high watermark; once they hit zero, weak publishes
   are *shed* instead of letting the queue grow into the §4.4 kill
   cliff. The queue must end the flood alive (not decommissioned).
2. **Recovery**: draining the backlog refills the credits (hysteresis:
   refill only once depth falls under the low watermark) and the
   admission state returns to ``open``.
3. **Coalescing + batched apply**: a hot-object update storm collapses
   into a handful of merged messages, which the subscriber drains in
   group-committed batches via ``pop_many``/``process_batch``.

Exit 0 iff messages were shed, updates coalesced, every surviving
message applied, and the queue was never decommissioned.
"""

from __future__ import annotations

from typing import List


def _flag(args: List[str], name: str, default: int) -> int:
    if name in args:
        return int(args[args.index(name) + 1])
    return default


def flow_command(args: List[str]) -> int:
    if "--demo" not in args:
        print("the flow command currently only supports --demo")
        return 1
    writes = _flag(args, "--writes", 200)
    queue_limit = _flag(args, "--queue-limit", 64)

    from repro.core import Ecosystem
    from repro.databases.document import MongoLike
    from repro.databases.relational import PostgresLike
    from repro.orm import Field, Model
    from repro.runtime.flow import FlowConfig

    eco = Ecosystem(queue_limit=queue_limit)
    eco.enable_flow(FlowConfig(batch_max=8))
    pub = eco.service("pub", database=MongoLike("pub-db"), delivery_mode="weak")

    @pub.model(publish=["name", "score"], name="Item")
    class Item(Model):
        name = Field(str)
        score = Field(int, default=0)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(
        subscribe={"from": "pub", "fields": ["name", "score"], "mode": "weak"},
        name="Item",
    )
    class SubItem(Model):
        name = Field(str)
        score = Field(int, default=0)

    queue = sub.subscriber.queue
    flow = queue.flow

    print(
        f"flow demo: queue_limit={queue_limit} "
        f"(credits high={flow.high} low={flow.low}), {writes} flood writes"
    )

    # Phase 1: flood with distinct creates, nobody draining.
    with pub.controller():
        for i in range(writes):
            Item.create(name=f"flood-{i}", score=0)
    shed = eco.metrics.value("flow.sub.shed")
    print(
        f"after flood: queued={len(queue)} shed={shed} "
        f"state={flow.state} credits={flow.credits} "
        f"decommissioned={queue.decommissioned}"
    )
    for link in eco.monitor.health().links:
        print("  " + link.summary_line())

    survivors = len(queue)
    drained = sub.subscriber.drain()
    print(f"drained {drained} messages")

    # Phase 2: hot-object update storm (coalescing + batched apply).
    hot = []
    with pub.controller():
        for i in range(4):
            hot.append(Item.create(name=f"hot-{i}", score=0))
    rounds = 25
    with pub.controller():
        for r in range(rounds):
            for item in hot:
                item.score += 1
                item.save()
    coalesced = eco.metrics.value("flow.sub.coalesced")
    print(
        f"after update storm: {rounds * len(hot)} updates -> "
        f"queued={len(queue)} coalesced={coalesced} state={flow.state}"
    )
    drained += sub.subscriber.drain()

    print()
    print("flow.* metrics:")
    for name, value in eco.metrics.snapshot("flow.").items():
        rendered = (
            f"count={value['count']} mean={value['mean']:.1f}"
            if isinstance(value, dict)
            else str(value)
        )
        print(f"  {name:<32} {rendered}")

    batches = eco.metrics.snapshot("flow.")["flow.sub.batch_size"]["count"]
    replicated = [SubItem.__mapper__.find(item.id) for item in hot]
    converged = all(
        row is not None and row["score"] == rounds for row in replicated
    )
    failures = []
    if shed <= 0:
        failures.append("no weak publishes were shed under pressure")
    if queue.decommissioned:
        failures.append("queue decommissioned — shedding failed to prevent the kill")
    if coalesced <= 0:
        failures.append("hot-object updates did not coalesce")
    if batches <= 0:
        failures.append("no batched applies recorded")
    if len(queue):
        failures.append(f"{len(queue)} messages left queued")
    if not converged:
        failures.append("hot objects did not converge to the final score")
    if failures:
        for failure in failures:
            print(f"FAILED: {failure}")
        return 1
    print(
        f"OK: shed {shed} under pressure (queue survived), applied "
        f"{survivors} flood survivors, coalesced {coalesced} hot updates, "
        f"{batches} batched applies, replicas converged"
    )
    return 0
