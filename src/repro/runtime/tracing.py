"""End-to-end tracing of the publish→route→apply hot path.

A :class:`Trace` rides inside the Fig 6(b) message envelope (it survives
the JSON wire round trip of ``Message.copy()``), accumulating one
:class:`Span` per pipeline stage:

    publisher.intercept       the whole ORM-intercepted write
    publisher.collect_deps    dependency collection from the controller ctx
    publisher.version_register  version-store counter bumps
    publisher.engine_write    the underlying engine write
    broker.route              wire-copy + enqueue into one subscriber queue
    queue.dwell               time spent sitting in the durable queue
    subscriber.dep_wait       waiting for dependency counters
    subscriber.apply          applying the operations through the local ORM

plus point-in-time marks (``queue.enqueued``, ``subscriber.ack``). The
per-ecosystem :class:`Tracer` is the on/off switch and the sink finished
traces land in; tracing is off by default and a disabled tracer adds a
single ``None`` check to the hot path.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Dict, List, Optional

from repro.clock import DEFAULT_CLOCK

# Stage names, in pipeline order (used for display sorting and docs).
STAGE_INTERCEPT = "publisher.intercept"
STAGE_COLLECT = "publisher.collect_deps"
STAGE_REGISTER = "publisher.version_register"
STAGE_ENGINE_WRITE = "publisher.engine_write"
STAGE_ROUTE = "broker.route"
STAGE_DWELL = "queue.dwell"
STAGE_DEP_WAIT = "subscriber.dep_wait"
STAGE_APPLY = "subscriber.apply"

MARK_ENQUEUED = "queue.enqueued"
MARK_ACKED = "subscriber.ack"

# Anti-entropy stages: an audit run records one standalone trace (no
# message rides along) with digest-build, Merkle-diff and repair-publish
# spans, so `python -m repro repair --demo` and tests can see where an
# audit spends its time.
STAGE_AUDIT_DIGEST = "audit.digest"
STAGE_AUDIT_DIFF = "audit.merkle_diff"
STAGE_REPAIR_PUBLISH = "repair.publish"

PIPELINE_STAGES = (
    STAGE_INTERCEPT,
    STAGE_COLLECT,
    STAGE_REGISTER,
    STAGE_ENGINE_WRITE,
    STAGE_ROUTE,
    STAGE_DWELL,
    STAGE_DEP_WAIT,
    STAGE_APPLY,
    STAGE_AUDIT_DIGEST,
    STAGE_AUDIT_DIFF,
    STAGE_REPAIR_PUBLISH,
)


def trace_now() -> float:
    """Timestamp source for spans: always the wall monotonic clock, so
    publisher- and subscriber-side spans are comparable across threads
    (ecosystem clocks may be virtual)."""
    return DEFAULT_CLOCK.monotonic()


class Span:
    """One timed pipeline stage of one message."""

    __slots__ = ("stage", "start", "duration")

    def __init__(self, stage: str, start: float, duration: float) -> None:
        self.stage = stage
        self.start = start
        self.duration = duration

    def to_dict(self) -> Dict[str, Any]:
        return {"stage": self.stage, "start": self.start, "duration": self.duration}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        return cls(data["stage"], data["start"], data["duration"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Span {self.stage} {self.duration * 1000:.3f}ms>"


class Trace:
    """Per-message span collection (JSON-serialisable)."""

    def __init__(
        self,
        app: str = "",
        spans: Optional[List[Span]] = None,
        marks: Optional[Dict[str, float]] = None,
    ) -> None:
        self.app = app
        self.spans: List[Span] = list(spans or [])
        self.marks: Dict[str, float] = dict(marks or {})

    def add(self, stage: str, start: float, duration: float) -> None:
        self.spans.append(Span(stage, start, duration))

    def mark(self, name: str, at: Optional[float] = None) -> None:
        self.marks[name] = trace_now() if at is None else at

    def stages(self) -> List[str]:
        return [span.stage for span in self.spans]

    def duration(self, stage: str) -> Optional[float]:
        """Total duration of every span of ``stage`` (None if absent)."""
        matching = [s.duration for s in self.spans if s.stage == stage]
        if not matching:
            return None
        return sum(matching)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "app": self.app,
            "spans": [span.to_dict() for span in self.spans],
            "marks": self.marks,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Trace":
        return cls(
            app=data.get("app", ""),
            spans=[Span.from_dict(s) for s in data.get("spans", [])],
            marks=data.get("marks", {}),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Trace app={self.app} stages={self.stages()}>"


class Tracer:
    """Per-ecosystem tracing switch and sink for finished traces."""

    def __init__(self, capacity: int = 256) -> None:
        self.enabled = False
        self._finished: "deque[Trace]" = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def enable(self) -> "Tracer":
        self.enabled = True
        return self

    def disable(self) -> None:
        self.enabled = False

    def begin(self, app: str) -> Optional[Trace]:
        """Start a trace for one message — None when tracing is off,
        which is the entire hot-path cost of the facility."""
        if not self.enabled:
            return None
        return Trace(app=app)

    def record(self, trace: Trace) -> None:
        """A subscriber finished applying a traced message."""
        with self._lock:
            self._finished.append(trace)

    def finished(self) -> List[Trace]:
        with self._lock:
            return list(self._finished)

    def last(self) -> Optional[Trace]:
        with self._lock:
            return self._finished[-1] if self._finished else None

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()


def format_trace(trace: Trace) -> List[str]:
    """Render one finished trace as aligned per-stage lines."""
    lines = [f"trace of one {trace.app!r} message:"]
    order = {stage: i for i, stage in enumerate(PIPELINE_STAGES)}
    for span in sorted(trace.spans, key=lambda s: (order.get(s.stage, 99), s.start)):
        lines.append(f"  {span.stage:<28} {span.duration * 1000:9.3f} ms")
    total = sum(span.duration for span in trace.spans)
    lines.append(f"  {'total (sum of spans)':<28} {total * 1000:9.3f} ms")
    return lines
