"""End-to-end tracing of the publish→route→apply hot path.

A :class:`Trace` rides inside the Fig 6(b) message envelope (it survives
the JSON wire round trip of ``Message.copy()``), accumulating one
:class:`Span` per pipeline stage:

    publisher.intercept       the whole ORM-intercepted write
    publisher.collect_deps    dependency collection from the controller ctx
    publisher.version_register  version-store counter bumps
    publisher.engine_write    the underlying engine write
    broker.route              wire-copy + enqueue into one subscriber queue
    queue.dwell               time spent sitting in the durable queue
    subscriber.dep_wait       waiting for dependency counters
    subscriber.apply          applying the operations through the local ORM

plus point-in-time marks (``queue.enqueued``, ``subscriber.ack``). The
per-ecosystem :class:`Tracer` is the on/off switch and the sink finished
traces land in; tracing is off by default and a disabled tracer adds a
single ``None`` check to the hot path.

Two production-mode facilities on top (docs/observability.md,
"Replication-health monitoring"):

- **sampled always-on tracing** — ``eco.enable_tracing(sample_rate=0.01)``
  keeps the tracer on permanently at bounded cost: a deterministic
  head-based decision (seeded hash of the message uid) picks which
  messages carry their trace across the wire. Same seed + rate → the
  same sampled uid set, so a trace seen on one link is seen on all.
- **trace ids + the active-trace context** — every trace has a
  ``trace_id`` (adopted from the message uid when one attaches), and the
  thread applying a traced message runs under :func:`activate_trace`, so
  a slow ``Histogram.record`` can capture the current id as an exemplar.
"""

from __future__ import annotations

import itertools
import threading
import zlib
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional

from repro.clock import DEFAULT_CLOCK

# Stage names, in pipeline order (used for display sorting and docs).
STAGE_INTERCEPT = "publisher.intercept"
STAGE_COLLECT = "publisher.collect_deps"
STAGE_REGISTER = "publisher.version_register"
STAGE_ENGINE_WRITE = "publisher.engine_write"
STAGE_ROUTE = "broker.route"
#: Shipping one wire payload across the broker's shard seam (recorded on
#: the origin shard; the receiving shard's first span is its own ROUTE).
STAGE_FORWARD = "transport.forward"
STAGE_DWELL = "queue.dwell"
STAGE_DEP_WAIT = "subscriber.dep_wait"
STAGE_APPLY = "subscriber.apply"
#: Group-commit window of the flow-control batched apply: one span per
#: batched message, covering the whole batch transaction it rode in.
STAGE_BATCH = "subscriber.batch_apply"

MARK_ENQUEUED = "queue.enqueued"
MARK_ACKED = "subscriber.ack"

# Anti-entropy stages: an audit run records one standalone trace (no
# message rides along) with digest-build, Merkle-diff and repair-publish
# spans, so `python -m repro repair --demo` and tests can see where an
# audit spends its time.
STAGE_AUDIT_DIGEST = "audit.digest"
STAGE_AUDIT_DIFF = "audit.merkle_diff"
STAGE_REPAIR_PUBLISH = "repair.publish"

PIPELINE_STAGES = (
    STAGE_INTERCEPT,
    STAGE_COLLECT,
    STAGE_REGISTER,
    STAGE_ENGINE_WRITE,
    STAGE_ROUTE,
    STAGE_FORWARD,
    STAGE_DWELL,
    STAGE_DEP_WAIT,
    STAGE_APPLY,
    STAGE_BATCH,
    STAGE_AUDIT_DIGEST,
    STAGE_AUDIT_DIFF,
    STAGE_REPAIR_PUBLISH,
)


def trace_now() -> float:
    """Timestamp source for spans: always the wall monotonic clock, so
    publisher- and subscriber-side spans are comparable across threads
    (ecosystem clocks may be virtual). *Not* comparable across processes
    — the cluster plane estimates per-peer offsets and normalizes spans
    at assembly time (repro.runtime.monitor.cluster)."""
    return DEFAULT_CLOCK.monotonic()


# -- process shard identity -------------------------------------------------

#: Name of the shard this process hosts ("" outside a sharded run). Set
#: once by the shard worker entry point; every Span and Trace created
#: afterwards is stamped with it, so spans arriving over the wire say
#: which process's clock their timestamps belong to.
_process_shard = ""


def set_process_shard(name: str) -> None:
    global _process_shard
    _process_shard = name


def process_shard() -> str:
    return _process_shard


# -- the active-trace context (exemplar support) ---------------------------

_active = threading.local()


def current_trace() -> Optional["Trace"]:
    """The trace the calling thread is working under, or None.

    Set by :func:`activate_trace` around publisher interception and
    subscriber message processing; read by ``Histogram.record`` when an
    exemplar threshold is armed."""
    return getattr(_active, "trace", None)


@contextmanager
def activate_trace(trace: Optional["Trace"]):
    """Make ``trace`` the thread's current trace for the block (no-op
    context when ``trace`` is None)."""
    previous = getattr(_active, "trace", None)
    _active.trace = trace
    try:
        yield trace
    finally:
        _active.trace = previous


_trace_ids = itertools.count(1)


class Span:
    """One timed pipeline stage of one message."""

    __slots__ = ("stage", "start", "duration", "shard")

    def __init__(
        self,
        stage: str,
        start: float,
        duration: float,
        shard: Optional[str] = None,
    ) -> None:
        self.stage = stage
        self.start = start
        self.duration = duration
        #: Which process recorded the span (its clock domain). Stamped
        #: from the process shard by default; wire deserialization
        #: preserves whatever the recording process said.
        self.shard = _process_shard if shard is None else shard

    def to_dict(self) -> Dict[str, Any]:
        out = {"stage": self.stage, "start": self.start, "duration": self.duration}
        if self.shard:
            out["shard"] = self.shard
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        return cls(
            data["stage"], data["start"], data["duration"],
            shard=data.get("shard", ""),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Span {self.stage} {self.duration * 1000:.3f}ms>"


class Trace:
    """Per-message span collection (JSON-serialisable)."""

    def __init__(
        self,
        app: str = "",
        spans: Optional[List[Span]] = None,
        marks: Optional[Dict[str, float]] = None,
        trace_id: Optional[str] = None,
        origin: Optional[str] = None,
    ) -> None:
        self.app = app
        self.spans: List[Span] = list(spans or [])
        self.marks: Dict[str, float] = dict(marks or {})
        #: Shard the trace was born on ("" outside sharded runs). Rides
        #: the wire so a receiving shard knows who started the trace.
        self.origin = _process_shard if origin is None else origin
        #: Stable identity: standalone traces (audits) get a process-local
        #: serial; traces that attach to a message adopt the message uid,
        #: so an exemplar links straight to the offending message.
        self.trace_id = trace_id if trace_id is not None else f"t{next(_trace_ids)}"

    def add(self, stage: str, start: float, duration: float) -> None:
        self.spans.append(Span(stage, start, duration))

    def mark(self, name: str, at: Optional[float] = None) -> None:
        self.marks[name] = trace_now() if at is None else at

    def stages(self) -> List[str]:
        return [span.stage for span in self.spans]

    def duration(self, stage: str) -> Optional[float]:
        """Total duration of every span of ``stage`` (None if absent)."""
        matching = [s.duration for s in self.spans if s.stage == stage]
        if not matching:
            return None
        return sum(matching)

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "trace_id": self.trace_id,
            "app": self.app,
            "spans": [span.to_dict() for span in self.spans],
            "marks": self.marks,
        }
        if self.origin:
            out["origin"] = self.origin
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Trace":
        return cls(
            app=data.get("app", ""),
            spans=[Span.from_dict(s) for s in data.get("spans", [])],
            marks=data.get("marks", {}),
            trace_id=data.get("trace_id"),
            origin=data.get("origin", ""),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Trace {self.trace_id} app={self.app} stages={self.stages()}>"


#: Sampling decisions hash into this many buckets; rates finer than
#: 1/SAMPLE_BUCKETS round to zero.
SAMPLE_BUCKETS = 1_000_000


class SpanLog:
    """Publisher-side span collection without a :class:`Trace`.

    Duck-types ``Trace.add`` so the shared dependency-collection and
    version-register helpers feed it unchanged, but stores plain tuples:
    at production sampling rates almost every message turns out to be
    unsampled, and the hot path then never allocates a Trace or Span at
    all — the real objects are built at :meth:`Tracer.attach_log` time,
    only for messages that win the sampling draw.
    """

    __slots__ = ("spans",)

    def __init__(self) -> None:
        self.spans: List[tuple] = []

    def add(self, stage: str, start: float, duration: float) -> None:
        self.spans.append((stage, start, duration))


class Tracer:
    """Per-ecosystem tracing switch and sink for finished traces.

    ``sample_rate=1.0`` (the default) traces every message. Lower rates
    make head-based decisions per message uid — ``stable`` (seeded md5-
    free CRC) so the sampled set is identical for a given (seed, rate)
    whatever thread or process asks, and a message is either traced on
    every hop or on none.
    """

    def __init__(
        self, capacity: int = 256, sample_rate: float = 1.0, seed: int = 0
    ) -> None:
        self.enabled = False
        self.sample_rate = sample_rate
        self.seed = seed
        self._finished: "deque[Trace]" = deque(maxlen=capacity)
        #: Traces this process started but whose message finished
        #: elsewhere (a forward shipped it to another shard): keyed by
        #: trace_id — a fan-out to several remote queues records once —
        #: with FIFO eviction at the same capacity as finished traces.
        self._partials: Dict[str, Trace] = {}
        self._partial_order: "deque[str]" = deque()
        self._capacity = capacity
        self._lock = threading.Lock()
        #: Finished traces are also handed here (the ecosystem points it
        #: at ``FlightRecorder.record_trace``).
        self.sink: Optional[Callable[[Trace], None]] = None

    def enable(
        self, sample_rate: Optional[float] = None, seed: Optional[int] = None
    ) -> "Tracer":
        if sample_rate is not None:
            if not 0.0 <= sample_rate <= 1.0:
                raise ValueError("sample_rate must be within [0, 1]")
            self.sample_rate = sample_rate
        if seed is not None:
            self.seed = seed
        self.enabled = True
        return self

    def disable(self) -> None:
        self.enabled = False

    def begin(self, app: str) -> Optional[Trace]:
        """Start a trace for one message — None when tracing is off,
        which is the entire hot-path cost of the facility."""
        if not self.enabled:
            return None
        return Trace(app=app)

    def begin_log(self) -> Optional[SpanLog]:
        """Start publisher-side span collection for one message — None
        when tracing is off. Cheaper than :meth:`begin`: the Trace is
        only materialised by :meth:`attach_log` if the uid is sampled."""
        if not self.enabled:
            return None
        return SpanLog()

    def attach_log(self, app: str, log: SpanLog, message: Any) -> Optional[Trace]:
        """Sampling decision for a :class:`SpanLog`-collected message:
        build the Trace and attach it iff the uid wins the draw."""
        if not self.sampled(message.uid):
            return None
        trace = Trace(
            app=app,
            spans=[Span(stage, start, duration)
                   for stage, start, duration in log.spans],
            trace_id=message.uid,
        )
        message.trace = trace
        return trace

    def sampled(self, uid: str) -> bool:
        """Deterministic head-based decision for one message uid."""
        rate = self.sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        bucket = zlib.crc32(f"{self.seed}:{uid}".encode("utf-8")) % SAMPLE_BUCKETS
        return bucket < int(rate * SAMPLE_BUCKETS)

    def attach(self, trace: Optional[Trace], message: Any) -> bool:
        """Attach ``trace`` to ``message`` iff its uid is sampled.

        The trace adopts the message uid as its id (exemplars then link
        straight to the message); an unsampled message ships with no
        trace, so the subscriber side pays nothing for it."""
        if trace is None or not self.sampled(message.uid):
            return False
        trace.trace_id = message.uid
        message.trace = trace
        return True

    def record(self, trace: Trace) -> None:
        """A subscriber finished applying a traced message."""
        with self._lock:
            self._finished.append(trace)
        if self.sink is not None:
            self.sink(trace)

    def record_partial(self, trace: Trace) -> None:
        """The publisher side of a forwarded message: the trace left on
        the wire, but this process keeps its own spans (intercept, route,
        forward) so ``trace_fetch`` can serve the origin half."""
        with self._lock:
            if trace.trace_id not in self._partials:
                self._partial_order.append(trace.trace_id)
                while len(self._partial_order) > self._capacity:
                    self._partials.pop(self._partial_order.popleft(), None)
            self._partials[trace.trace_id] = trace

    def partials(self) -> List[Trace]:
        with self._lock:
            return [self._partials[tid] for tid in self._partial_order
                    if tid in self._partials]

    def finished(self) -> List[Trace]:
        with self._lock:
            return list(self._finished)

    def last(self) -> Optional[Trace]:
        with self._lock:
            return self._finished[-1] if self._finished else None

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
            self._partials.clear()
            self._partial_order.clear()


def format_trace(trace: Trace) -> List[str]:
    """Render one finished trace as aligned per-stage lines."""
    lines = [f"trace of one {trace.app!r} message:"]
    order = {stage: i for i, stage in enumerate(PIPELINE_STAGES)}
    for span in sorted(trace.spans, key=lambda s: (order.get(s.stage, 99), s.start)):
        lines.append(f"  {span.stage:<28} {span.duration * 1000:9.3f} ms")
    total = sum(span.duration for span in trace.spans)
    lines.append(f"  {'total (sum of spans)':<28} {total * 1000:9.3f} ms")
    return lines
