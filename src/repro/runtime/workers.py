"""Threaded subscriber worker pools.

"Messages in the queue are processed in parallel by multiple subscriber
workers per application" (§4). Each worker pops a message, waits (up to
a timeout) for its dependencies, applies it and acks. A message that
exceeds the retry budget triggers the deadlock callback — production
Synapse rebootstraps the subscriber at that point (§6.5).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, List, Optional

from repro.errors import QueueDecommissioned
from repro.runtime.metrics import Counter


class WorkerFleet:
    """One pool per subscribing service of an ecosystem.

    ::

        with WorkerFleet(eco, workers=4) as fleet:
            ...publish...
            fleet.wait_until_idle()
    """

    def __init__(self, ecosystem: Any, workers: int = 4, **pool_kwargs: Any) -> None:
        self.ecosystem = ecosystem
        # Only locally-owned services get worker pools: in a process-
        # sharded run each shard drains exactly its own queues.
        self.pools: List["SubscriberWorkerPool"] = [
            SubscriberWorkerPool(service, workers=workers, **pool_kwargs)
            for service in ecosystem.local_services()
            if service.subscriber.queue is not None
        ]

    def start(self) -> "WorkerFleet":
        for pool in self.pools:
            pool.start()
        return self

    def stop(self) -> None:
        for pool in self.pools:
            pool.stop()

    def wait_until_idle(self, timeout: float = 30.0, settle_rounds: int = 3) -> bool:
        """Idle only counts when every pool is simultaneously drained for
        ``settle_rounds`` consecutive checks (decorator cascades bounce
        messages between services).

        ``timeout`` bounds the *whole* call: one deadline is shared
        across every round and pool. Granting each pool the full budget
        would let a busy fleet block for ``settle_rounds × pools ×
        timeout`` — 24x the caller's stated patience at the defaults.

        With CDC enabled, idle additionally requires every outbox tail
        to be empty: a raw write whose entry the poller has not yet
        published is in-flight work, and reporting idle over it would
        let callers observe a missing replica row. Each pass tails the
        outboxes first, then re-checks after the pools settle.
        """
        deadline = time.monotonic() + timeout
        while True:
            cdc = self._cdc_manager()
            if cdc is not None:
                cdc.poll_all()
            for _ in range(settle_rounds):
                for pool in self.pools:
                    remaining = deadline - time.monotonic()
                    if not pool.wait_until_idle(timeout=max(0.0, remaining)):
                        return False
            if cdc is None or cdc.idle():
                return True
            if time.monotonic() >= deadline:
                return False

    def _cdc_manager(self) -> Optional[Any]:
        # getattr-tolerant: directed scenarios build bare fleets via
        # ``__new__`` with only ``pools`` populated.
        ecosystem = getattr(self, "ecosystem", None)
        return getattr(ecosystem, "cdc", None)

    def __enter__(self) -> "WorkerFleet":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


class SubscriberWorkerPool:
    """N threads draining one subscriber's queue concurrently."""

    def __init__(
        self,
        service: Any,
        workers: int = 4,
        wait_timeout: float = 0.2,
        max_deliveries: int = 20,
        on_deadlock: Optional[Callable[[Any], None]] = None,
        give_up_action: str = "drop",
    ) -> None:
        if give_up_action not in ("drop", "apply"):
            raise ValueError("give_up_action must be 'drop' or 'apply'")
        self.service = service
        self.workers = workers
        self.wait_timeout = wait_timeout
        self.max_deliveries = max_deliveries
        self.on_deadlock = on_deadlock
        #: What to do with a message whose dependencies never arrive:
        #: "drop" it, or "apply" it with weak semantics (§6.5's
        #: configurable give-up timeout).
        self.give_up_action = give_up_action
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._active = 0
        self._active_lock = threading.Lock()
        # Event-based idle signaling: workers notify after every message
        # completion (replacing the old 5 ms busy-poll in
        # :meth:`wait_until_idle`).
        self._idle = threading.Condition(self._active_lock)
        # Local counters keep per-pool semantics (a fresh pool starts at
        # zero); the ecosystem registry accumulates across pools.
        self._deadlocked = Counter()
        self._apply_errors = Counter()
        registry = service.ecosystem.metrics
        self._reg_deadlocked = registry.counter(f"workers.{service.name}.deadlocked")
        self._reg_apply_errors = registry.counter(f"workers.{service.name}.apply_errors")
        self._recorder = getattr(service.ecosystem, "recorder", None)
        # Flow control: when the ecosystem has batched apply enabled the
        # workers switch to the pop_many/process_batch loop, sharing one
        # AIMD batch sizer across the pool.
        controller = getattr(service.ecosystem, "flow", None)
        if controller is not None and controller.config.batch_apply:
            from repro.runtime.flow import BatchSizer

            self._flow = controller
            self._sizer = BatchSizer(controller.config)
        else:
            self._flow = None
            self._sizer = None
        self._batches = Counter()

    @property
    def deadlocked_messages(self) -> int:
        return self._deadlocked.value

    @property
    def apply_errors(self) -> int:
        """Messages whose apply raised (DB fault, bad payload): they are
        nacked and retried until the delivery budget runs out."""
        return self._apply_errors.value

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "SubscriberWorkerPool":
        self._stop.clear()
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._run, name=f"{self.service.name}-worker-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=5)
        self._threads.clear()

    def __enter__(self) -> "SubscriberWorkerPool":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- main loop ---------------------------------------------------------------

    def _run(self) -> None:
        subscriber = self.service.subscriber
        queue = subscriber.queue
        if queue is None:
            return
        if self._flow is not None:
            self._run_batched(subscriber, queue)
            return
        while not self._stop.is_set():
            try:
                message = queue.pop(timeout=0.05)
            except QueueDecommissioned:
                self._record_anomaly("queue.decommissioned")
                if self.on_deadlock is not None:
                    self.on_deadlock(self.service)
                return
            if message is None:
                continue
            with self._active_lock:
                self._active += 1
            try:
                errored = False
                try:
                    # First delivery probes without blocking: when the
                    # queue holds out-of-order messages, burning the
                    # full dependency wait on each one serialises
                    # chain-head discovery at wait_timeout per pop
                    # (with every worker parked, nothing progresses at
                    # all). A fast defer scans the queue in one cheap
                    # rotation instead; redeliveries block as before so
                    # an in-flight predecessor still satisfies us
                    # without another round trip through the queue.
                    first = message.delivery_count <= 1
                    done = subscriber.process_message(
                        message, wait_timeout=0.0 if first else self.wait_timeout
                    )
                except Exception:
                    # A transient engine fault (or poisonous payload) must
                    # not kill the worker: nack and let redelivery retry.
                    self._apply_errors.increment()
                    self._reg_apply_errors.increment()
                    done = False
                    errored = True
                try:
                    if done:
                        queue.ack(message)
                    elif message.delivery_count >= self.max_deliveries:
                        self._give_up(subscriber, queue, message)
                    elif errored:
                        queue.nack(message)
                    else:
                        # Dependency stall: the predecessor is behind
                        # this message in the queue, so rotate to the
                        # back (nacking to the front would re-pop the
                        # same message while the predecessor starves).
                        queue.defer(message)
                except QueueDecommissioned:
                    # The queue died while this delivery was in flight
                    # (its ack/nack is a tolerated no-op). Route the
                    # decommission like the pop path does instead of
                    # letting the exception kill the worker silently.
                    self._record_anomaly("queue.decommissioned")
                    if self.on_deadlock is not None:
                        self.on_deadlock(self.service)
                    return
            finally:
                with self._idle:
                    self._active -= 1
                    self._idle.notify_all()

    def _run_batched(self, subscriber: Any, queue: Any) -> None:
        """Flow-control loop: drain up to the AIMD batch size in one
        lock round-trip, verify/apply via ``process_batch`` (group
        commit), then feed the outcome — and, periodically, the
        LagMonitor's link pressure — back into the sizer."""
        sizer = self._sizer
        flow = queue.flow
        monitor = getattr(self.service.ecosystem, "monitor", None)
        while not self._stop.is_set():
            try:
                batch = queue.pop_many(sizer.current, timeout=0.05)
            except QueueDecommissioned:
                self._record_anomaly("queue.decommissioned")
                if self.on_deadlock is not None:
                    self.on_deadlock(self.service)
                return
            if not batch:
                continue
            with self._active_lock:
                self._active += 1
            try:
                errors = 0
                try:
                    done, retry, errors = subscriber.process_batch(
                        batch, wait_timeout=self.wait_timeout
                    )
                except Exception:
                    # process_batch contains apply errors itself; this
                    # guards the verification phase. Nack everything.
                    done, retry, errors = [], list(batch), 1
                if errors:
                    self._apply_errors.increment(errors)
                    self._reg_apply_errors.increment(errors)
                try:
                    # A batch that applied nothing and raised nothing
                    # stalled purely on dependency waits: its missing
                    # predecessors are behind it in the queue. Rotate
                    # such batches to the back (defer) so the chain
                    # head surfaces; partially-applied batches made
                    # progress and retry at the front as before.
                    stalled = not done and not errors and retry
                    for message in done:
                        queue.ack(message)
                    for message in retry:
                        if message.delivery_count >= self.max_deliveries:
                            self._give_up(subscriber, queue, message)
                        elif stalled:
                            queue.defer(message)
                        else:
                            queue.nack(message)
                except QueueDecommissioned:
                    self._record_anomaly("queue.decommissioned")
                    if self.on_deadlock is not None:
                        self.on_deadlock(self.service)
                    return
                if flow is not None:
                    flow.batch_size.record(len(batch))
                sizer.on_batch(
                    popped=len(batch), applied=len(done), failed=len(retry) + errors
                )
                if self._batches.increment() % 32 == 0 and monitor is not None:
                    sizer.observe_pressure(
                        monitor.link_pressure(self.service.name)
                    )
            finally:
                with self._idle:
                    self._active -= 1
                    self._idle.notify_all()

    def _give_up(self, subscriber: Any, queue: Any, message: Any) -> None:
        """Give-up timeout reached (§6.5): drop or weak-apply, then ack."""
        if self.give_up_action == "apply":
            subscriber.force_apply(message)
        queue.ack(message)
        self._deadlocked.increment()
        self._reg_deadlocked.increment()
        self._record_anomaly(
            "worker.deadlock",
            uid=message.uid,
            app=message.app,
            deliveries=message.delivery_count,
            action=self.give_up_action,
        )
        if self.on_deadlock is not None:
            self.on_deadlock(self.service)

    def _record_anomaly(self, kind: str, **data: Any) -> None:
        """Flight-recorder hook: give-ups and decommissions are exactly
        the §6.5 events a postmortem needs frozen."""
        if self._recorder is not None:
            self._recorder.anomaly(kind, service=self.service.name, **data)

    # -- synchronisation -----------------------------------------------------------

    def wait_until_idle(self, timeout: float = 10.0) -> bool:
        """Block until the queue is drained and no worker is mid-message.

        Event-driven: workers notify the condition after every message
        completion; the short bounded wait is only a safety net against
        transitions with no notifier (e.g. an external publish while the
        pool is idle).
        """
        queue = self.service.subscriber.queue
        deadline = time.monotonic() + timeout

        def drained() -> bool:
            return queue is None or (len(queue) == 0 and queue.unacked_count == 0)

        with self._idle:
            while True:
                if self._active == 0 and drained():
                    return True
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(min(remaining, 0.25))
