"""Cassandra-like wide-column engine."""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.databases.base import Database
from repro.databases.columnar.memtable import Memtable, SSTable, compact, merge_row
from repro.errors import SchemaError, UnknownTableError

Row = Dict[str, Any]


class ColumnFamily:
    """Column-family declaration: partition key plus optional clustering key."""

    def __init__(
        self,
        name: str,
        partition_key: str = "id",
        clustering_key: Optional[str] = None,
    ) -> None:
        self.name = name
        self.partition_key = partition_key
        self.clustering_key = clustering_key

    def rowkey(self, values: Row) -> Tuple:
        partition = values.get(self.partition_key)
        if partition is None:
            raise SchemaError(
                f"missing partition key {self.partition_key!r} for {self.name!r}"
            )
        if self.clustering_key is None:
            return (partition,)
        return (partition, values.get(self.clustering_key))


class _Family:
    """Runtime state of one column family: memtable + SSTables."""

    def __init__(self, schema: ColumnFamily, flush_threshold: int) -> None:
        self.schema = schema
        self.memtable = Memtable()
        self.sstables: List[SSTable] = []
        self.flush_threshold = flush_threshold
        self.flushes = 0
        self.compactions = 0
        self._id_seq = itertools.count(1)

    def sources_newest_first(self) -> List:
        return [self.memtable] + list(reversed(self.sstables))

    def maybe_flush(self) -> None:
        if self.memtable.approximate_size() >= self.flush_threshold:
            self.sstables.append(SSTable.from_memtable(self.memtable))
            self.memtable = Memtable()
            self.flushes += 1
            if len(self.sstables) > 4:
                self.sstables = [compact(self.sstables)]
                self.compactions += 1


class ColumnarDatabase(Database):
    """Write-optimised engine: upserts land in a memtable, flushed to
    immutable SSTables and compacted. No ``RETURNING``: Synapse's
    read-back intercept protocol applies (§4.1). Logged batches provide
    the batch atomicity used for transactional message application (§4.2).
    """

    engine_family = "columnar"
    supports_returning = False
    supports_transactions = False

    def __init__(self, name: str, flush_threshold: int = 512, **kwargs: Any) -> None:
        super().__init__(name, **kwargs)
        self._families: Dict[str, _Family] = {}
        self._flush_threshold = flush_threshold
        self._ts = itertools.count(1)

    # -- DDL -----------------------------------------------------------------

    def create_table(self, schema: ColumnFamily) -> None:
        with self._lock:
            if schema.name in self._families:
                raise SchemaError(f"column family {schema.name!r} exists")
            self._families[schema.name] = _Family(schema, self._flush_threshold)

    def has_table(self, name: str) -> bool:
        return name in self._families

    def table_names(self) -> List[str]:
        return sorted(self._families)

    # -- writes ----------------------------------------------------------------

    def put(self, table: str, values: Row) -> Tuple:
        """Upsert columns of one row; returns the row key. Assigns the
        partition key from a per-family sequence when absent."""
        with self._lock:
            self._charge_write()
            family = self._family(table)
            values = dict(values)
            if values.get(family.schema.partition_key) is None:
                values[family.schema.partition_key] = next(family._id_seq)
            rowkey = family.schema.rowkey(values)
            family.memtable.put(rowkey, values, next(self._ts))
            family.maybe_flush()
            return rowkey

    def delete(self, table: str, rowkey: Tuple) -> None:
        with self._lock:
            self._charge_write()
            self.stats.deletes += 1
            family = self._family(table)
            family.memtable.delete(rowkey, next(self._ts))
            family.maybe_flush()

    def batch(self, mutations: Iterable[Tuple[str, str, Any]]) -> None:
        """Logged batch: apply all mutations atomically at one timestamp.

        Each mutation is ``("put", table, values)`` or
        ``("delete", table, rowkey)``.
        """
        with self._lock:
            self._charge_write()
            ts = next(self._ts)
            for kind, table, payload in mutations:
                family = self._family(table)
                if kind == "put":
                    rowkey = family.schema.rowkey(payload)
                    family.memtable.put(rowkey, dict(payload), ts)
                elif kind == "delete":
                    family.memtable.delete(payload, ts)
                else:
                    raise SchemaError(f"unknown batch mutation {kind!r}")
            for table in {table for _, table, _ in mutations}:
                self._family(table).maybe_flush()

    # -- reads -----------------------------------------------------------------

    def get(self, table: str, rowkey: Tuple) -> Optional[Row]:
        with self._lock:
            self._charge_read()
            self.stats.index_lookups += 1
            family = self._family(table)
            return merge_row(rowkey, family.sources_newest_first())

    def get_by_id(self, table: str, partition: Any) -> Optional[Row]:
        """Point lookup for families without a clustering key."""
        return self.get(table, (partition,))

    def scan(self, table: str) -> List[Row]:
        """Full scan reconciling all sources; expensive, as on Cassandra."""
        with self._lock:
            self._charge_read()
            self.stats.scans += 1
            family = self._family(table)
            keys = set(family.memtable.cells) | set(family.memtable.tombstones)
            for sstable in family.sstables:
                keys.update(sstable.cells)
                keys.update(sstable.tombstones)
            sources = family.sources_newest_first()
            rows = []
            for key in keys:
                row = merge_row(key, sources)
                if row is not None:
                    rows.append(row)
            rows.sort(key=lambda r: str(r.get(family.schema.partition_key)))
            return rows

    def scan_partition(self, table: str, partition: Any) -> List[Row]:
        """All clustering rows of one partition."""
        with self._lock:
            self._charge_read()
            family = self._family(table)
            keys = set()
            for source in family.sources_newest_first():
                keys.update(k for k in source.cells if k[0] == partition)
                keys.update(k for k in source.tombstones if k[0] == partition)
            sources = family.sources_newest_first()
            rows = []
            for key in sorted(keys, key=str):
                row = merge_row(key, sources)
                if row is not None:
                    rows.append(row)
            return rows

    def count(self, table: str) -> int:
        return len(self.scan(table))

    # -- internals ---------------------------------------------------------------

    def _family(self, table: str) -> _Family:
        try:
            return self._families[table]
        except KeyError:
            raise UnknownTableError(f"no column family {table!r}") from None

    def storage_stats(self, table: str) -> Dict[str, int]:
        family = self._family(table)
        return {
            "memtable_size": family.memtable.approximate_size(),
            "sstables": len(family.sstables),
            "flushes": family.flushes,
            "compactions": family.compactions,
        }


class CassandraLike(ColumnarDatabase):
    """Cassandra stand-in."""

    engine_family = "cassandra"
