"""Wide-column store (Cassandra stand-in): LSM write path with memtable,
immutable SSTables, compaction, tombstones and logged batches."""

from repro.databases.columnar.engine import CassandraLike, ColumnarDatabase, ColumnFamily

__all__ = ["ColumnarDatabase", "CassandraLike", "ColumnFamily"]
