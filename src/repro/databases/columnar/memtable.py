"""Memtable and SSTable structures for the LSM write path.

Cells are ``(timestamp, value)`` pairs merged newest-wins per column, the
way Cassandra reconciles replicas and levels. Row deletion writes a
tombstone cell that shadows any older data.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

# rowkey -> column -> (timestamp, value)
Cells = Dict[Tuple, Dict[str, Tuple[int, Any]]]
# rowkey -> tombstone timestamp
Tombstones = Dict[Tuple, int]


class Memtable:
    """Mutable in-memory write buffer."""

    def __init__(self) -> None:
        self.cells: Cells = {}
        self.tombstones: Tombstones = {}

    def put(self, rowkey: Tuple, values: Dict[str, Any], timestamp: int) -> None:
        row = self.cells.setdefault(rowkey, {})
        for column, value in values.items():
            existing = row.get(column)
            if existing is None or existing[0] <= timestamp:
                row[column] = (timestamp, value)

    def delete(self, rowkey: Tuple, timestamp: int) -> None:
        current = self.tombstones.get(rowkey, -1)
        if timestamp > current:
            self.tombstones[rowkey] = timestamp

    def approximate_size(self) -> int:
        return len(self.cells) + len(self.tombstones)


class SSTable:
    """Immutable on-"disk" table produced by a memtable flush."""

    def __init__(self, cells: Cells, tombstones: Tombstones) -> None:
        self.cells = cells
        self.tombstones = tombstones

    @classmethod
    def from_memtable(cls, memtable: Memtable) -> "SSTable":
        return cls(dict(memtable.cells), dict(memtable.tombstones))

    def __len__(self) -> int:
        return len(self.cells)


def merge_row(
    rowkey: Tuple,
    sources: Iterable,
) -> Optional[Dict[str, Any]]:
    """Reconcile one row across memtable + SSTables (newest-wins per cell).

    ``sources`` iterates newest-first. Returns the visible row columns or
    None when a tombstone shadows every cell.
    """
    tombstone_ts = -1
    merged: Dict[str, Tuple[int, Any]] = {}
    for source in sources:
        ts = source.tombstones.get(rowkey)
        if ts is not None and ts > tombstone_ts:
            tombstone_ts = ts
        row = source.cells.get(rowkey)
        if row:
            for column, cell in row.items():
                existing = merged.get(column)
                if existing is None or cell[0] > existing[0]:
                    merged[column] = cell
    visible = {
        column: value
        for column, (ts, value) in merged.items()
        if ts > tombstone_ts
    }
    return visible or None


def compact(sstables: Iterable[SSTable]) -> SSTable:
    """Merge SSTables into one, dropping cells shadowed by tombstones."""
    tables = list(sstables)
    all_keys = set()
    for table in tables:
        all_keys.update(table.cells)
        all_keys.update(table.tombstones)
    cells: Cells = {}
    tombstones: Tombstones = {}
    for key in all_keys:
        ts = max((t.tombstones.get(key, -1) for t in tables), default=-1)
        if ts >= 0:
            tombstones[key] = ts
        merged: Dict[str, Tuple[int, Any]] = {}
        for table in tables:
            for column, cell in table.cells.get(key, {}).items():
                existing = merged.get(column)
                if existing is None or cell[0] > existing[0]:
                    merged[column] = cell
        live = {c: cell for c, cell in merged.items() if cell[0] > ts}
        if live:
            cells[key] = live
    return SSTable(cells, tombstones)
