"""Elasticsearch-like search engine."""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.databases.base import Database
from repro.databases.search.aggregations import (
    histogram_aggregation,
    stats_aggregation,
    terms_aggregation,
)
from repro.databases.search.analysis import ANALYZERS, analyze
from repro.databases.search.inverted_index import InvertedIndex
from repro.databases.search.query import MatchAll, Query
from repro.errors import SchemaError, UnknownTableError

Doc = Dict[str, Any]


class _SearchIndex:
    """One named index: stored docs + per-text-field inverted indexes."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.docs: Dict[Any, Doc] = {}
        self.field_analyzers: Dict[str, str] = {}
        self.inverted: Dict[str, InvertedIndex] = {}
        self._id_seq = itertools.count(1)

    def analyzer_for(self, field: str) -> str:
        return self.field_analyzers.get(field, "standard")

    def index_fields(self, doc_id: Any, doc: Doc) -> None:
        for field, value in doc.items():
            if not isinstance(value, str):
                continue
            inv = self.inverted.setdefault(field, InvertedIndex())
            inv.add(doc_id, analyze(value, self.analyzer_for(field)))

    def unindex_fields(self, doc_id: Any) -> None:
        for inv in self.inverted.values():
            inv.remove(doc_id)

    # Adapter surface consumed by the Query AST --------------------------

    def field_index(self, field: str) -> InvertedIndex:
        return self.inverted.get(field, InvertedIndex())

    def field_analyzer(self, field: str) -> str:
        return self.analyzer_for(field)

    def all_doc_ids(self) -> Set[Any]:
        return set(self.docs)

    def doc(self, doc_id: Any) -> Doc:
        return self.docs[doc_id]


class SearchDatabase(Database):
    """Document indexing plus scored queries and aggregations.

    Writes return the indexed document (Elasticsearch's index API echoes
    the document back), so the cheap Synapse intercept path applies.
    """

    engine_family = "search"
    supports_returning = True
    supports_transactions = False

    def __init__(self, name: str, **kwargs: Any) -> None:
        super().__init__(name, **kwargs)
        self._indexes: Dict[str, _SearchIndex] = {}

    # -- index management -------------------------------------------------

    def create_index(
        self, name: str, analyzers: Optional[Dict[str, str]] = None
    ) -> None:
        with self._lock:
            if name in self._indexes:
                raise SchemaError(f"index {name!r} already exists")
            index = _SearchIndex(name)
            for field, analyzer in (analyzers or {}).items():
                if analyzer not in ANALYZERS:
                    raise SchemaError(f"unknown analyzer {analyzer!r}")
                index.field_analyzers[field] = analyzer
            self._indexes[name] = index

    def ensure_index(self, name: str) -> None:
        if name not in self._indexes:
            self.create_index(name)

    def has_table(self, name: str) -> bool:
        return name in self._indexes

    def index_names(self) -> List[str]:
        return sorted(self._indexes)

    def set_analyzer(self, index: str, field: str, analyzer: str) -> None:
        if analyzer not in ANALYZERS:
            raise SchemaError(f"unknown analyzer {analyzer!r}")
        self._index(index).field_analyzers[field] = analyzer

    # -- writes ---------------------------------------------------------------

    def index_doc(self, index: str, doc: Doc) -> Doc:
        """Index (upsert) one document, returning it with its ``_id``."""
        with self._lock:
            self._charge_write()
            self.ensure_index(index)
            idx = self._index(index)
            new_doc = dict(doc)
            doc_id = new_doc.get("_id")
            if doc_id is None:
                doc_id = next(idx._id_seq)
                new_doc["_id"] = doc_id
            if doc_id in idx.docs:
                idx.unindex_fields(doc_id)
            idx.docs[doc_id] = new_doc
            idx.index_fields(doc_id, new_doc)
            return dict(new_doc)

    def delete_doc(self, index: str, doc_id: Any) -> Optional[Doc]:
        with self._lock:
            self._charge_write()
            self.stats.deletes += 1
            idx = self._index(index)
            doc = idx.docs.pop(doc_id, None)
            if doc is not None:
                idx.unindex_fields(doc_id)
            return doc

    # -- reads ---------------------------------------------------------------

    def get(self, index: str, doc_id: Any) -> Optional[Doc]:
        with self._lock:
            self._charge_read()
            self.stats.index_lookups += 1
            self.ensure_index(index)
            doc = self._index(index).docs.get(doc_id)
            return dict(doc) if doc is not None else None

    def search(
        self,
        index: str,
        query: Optional[Query] = None,
        size: Optional[int] = 10,
    ) -> List[Tuple[Doc, float]]:
        """Run a query; returns (document, score) best-first."""
        with self._lock:
            self._charge_read()
            self.ensure_index(index)
            idx = self._index(index)
            scores = (query or MatchAll()).matches(idx)
            hits = sorted(
                scores.items(), key=lambda kv: (-kv[1], str(kv[0]))
            )
            if size is not None:
                hits = hits[:size]
            return [(dict(idx.docs[doc_id]), score) for doc_id, score in hits]

    def count(self, index: str, query: Optional[Query] = None) -> int:
        with self._lock:
            self._charge_read()
            self.ensure_index(index)
            idx = self._index(index)
            return len((query or MatchAll()).matches(idx))

    def aggregate(
        self,
        index: str,
        kind: str,
        field: str,
        query: Optional[Query] = None,
        **kwargs: Any,
    ) -> Any:
        """Aggregation over query hits: ``terms``, ``stats``, ``histogram``."""
        with self._lock:
            self._charge_read()
            self.ensure_index(index)
            idx = self._index(index)
            scores = (query or MatchAll()).matches(idx)
            docs = [idx.docs[doc_id] for doc_id in scores]
        if kind == "terms":
            return terms_aggregation(docs, field, kwargs.get("size"))
        if kind == "stats":
            return stats_aggregation(docs, field)
        if kind == "histogram":
            return histogram_aggregation(docs, field, kwargs["interval"])
        raise SchemaError(f"unknown aggregation {kind!r}")

    # -- internals ---------------------------------------------------------------

    def _index(self, name: str) -> _SearchIndex:
        try:
            return self._indexes[name]
        except KeyError:
            raise UnknownTableError(f"no search index {name!r}") from None


class ElasticsearchLike(SearchDatabase):
    """Elasticsearch stand-in."""

    engine_family = "elasticsearch"
