"""Search engine (Elasticsearch stand-in): analyzers, inverted index,
TF-IDF scored queries and aggregations."""

from repro.databases.search.analysis import ANALYZERS, analyze
from repro.databases.search.engine import ElasticsearchLike, SearchDatabase
from repro.databases.search.query import Bool, Match, MatchAll, Range, Term

__all__ = [
    "SearchDatabase",
    "ElasticsearchLike",
    "Term",
    "Match",
    "MatchAll",
    "Bool",
    "Range",
    "analyze",
    "ANALYZERS",
]
