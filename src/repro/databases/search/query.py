"""Search query AST with TF-IDF scoring.

Queries evaluate against an index object exposing ``field_index(field)``
(an :class:`InvertedIndex`), ``all_doc_ids()`` and ``doc(doc_id)``;
``matches`` returns ``{doc_id: score}``.
"""

from __future__ import annotations

import math
from typing import Any, Dict

from repro.databases.search.analysis import analyze


class Query:
    def matches(self, index: Any) -> Dict[Any, float]:
        raise NotImplementedError


class MatchAll(Query):
    """Every document, score 1."""

    def matches(self, index: Any) -> Dict[Any, float]:
        return {doc_id: 1.0 for doc_id in index.all_doc_ids()}


class Term(Query):
    """Exact term in an analysed field (no analysis of the query string)."""

    def __init__(self, field: str, value: str) -> None:
        self.field = field
        self.value = value

    def matches(self, index: Any) -> Dict[Any, float]:
        inv = index.field_index(self.field)
        total_docs = max(len(index.all_doc_ids()), 1)
        df = inv.document_frequency(self.value)
        if df == 0:
            return {}
        idf = 1.0 + math.log(total_docs / df)
        return {
            doc_id: inv.term_frequency(self.value, doc_id) * idf
            for doc_id in inv.doc_ids(self.value)
        }


class Match(Query):
    """Analysed full-text match: query text is tokenised with the field's
    analyzer; documents matching any token score as the sum of TF-IDF."""

    def __init__(self, field: str, text: str) -> None:
        self.field = field
        self.text = text

    def matches(self, index: Any) -> Dict[Any, float]:
        analyzer = index.field_analyzer(self.field)
        scores: Dict[Any, float] = {}
        for token in analyze(self.text, analyzer):
            for doc_id, score in Term(self.field, token).matches(index).items():
                scores[doc_id] = scores.get(doc_id, 0.0) + score
        return scores


class Prefix(Query):
    """Terms starting with the given prefix (autocomplete-style)."""

    def __init__(self, field: str, prefix: str) -> None:
        self.field = field
        self.prefix = prefix

    def matches(self, index: Any) -> Dict[Any, float]:
        inv = index.field_index(self.field)
        scores: Dict[Any, float] = {}
        for term in inv.postings:
            if term.startswith(self.prefix):
                for doc_id, score in Term(self.field, term).matches(index).items():
                    scores[doc_id] = scores.get(doc_id, 0.0) + score
        return scores


class Phrase(Query):
    """All tokens present (conjunctive multi-term match; positional
    adjacency is not tracked by the index)."""

    def __init__(self, field: str, text: str) -> None:
        self.field = field
        self.text = text

    def matches(self, index: Any) -> Dict[Any, float]:
        analyzer = index.field_analyzer(self.field)
        tokens = analyze(self.text, analyzer)
        if not tokens:
            return {}
        partials = [Term(self.field, token).matches(index) for token in tokens]
        shared = set(partials[0])
        for partial in partials[1:]:
            shared &= set(partial)
        return {
            doc_id: sum(partial[doc_id] for partial in partials)
            for doc_id in shared
        }


class Range(Query):
    """Numeric range filter on a stored (non-analysed) field."""

    def __init__(self, field: str, gte: Any = None, lte: Any = None) -> None:
        self.field = field
        self.gte = gte
        self.lte = lte

    def matches(self, index: Any) -> Dict[Any, float]:
        out: Dict[Any, float] = {}
        for doc_id in index.all_doc_ids():
            value = index.doc(doc_id).get(self.field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            if self.gte is not None and value < self.gte:
                continue
            if self.lte is not None and value > self.lte:
                continue
            out[doc_id] = 1.0
        return out


class Bool(Query):
    """Elasticsearch-style boolean combination.

    - ``must``: all required; scores sum.
    - ``should``: optional; scores add (and suffice when no ``must``).
    - ``must_not``: excludes matches.
    """

    def __init__(self, must=None, should=None, must_not=None) -> None:
        self.must = list(must or [])
        self.should = list(should or [])
        self.must_not = list(must_not or [])

    def matches(self, index: Any) -> Dict[Any, float]:
        scores: Dict[Any, float] = {}
        if self.must:
            candidate_sets = [q.matches(index) for q in self.must]
            shared = set(candidate_sets[0])
            for cs in candidate_sets[1:]:
                shared &= set(cs)
            for doc_id in shared:
                scores[doc_id] = sum(cs[doc_id] for cs in candidate_sets)
        elif self.should:
            scores = {}
        else:
            scores = MatchAll().matches(index)
        for q in self.should:
            for doc_id, score in q.matches(index).items():
                if self.must and doc_id not in scores:
                    continue
                scores[doc_id] = scores.get(doc_id, 0.0) + score
        for q in self.must_not:
            for doc_id in q.matches(index):
                scores.pop(doc_id, None)
        return scores
