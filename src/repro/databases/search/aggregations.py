"""Aggregations over search hits (Elasticsearch-style analytics, §1)."""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, Iterable, List, Optional


def terms_aggregation(
    docs: Iterable[Dict[str, Any]], field: str, size: Optional[int] = None
) -> List[Dict[str, Any]]:
    """Bucket counts per distinct value; list fields count each element."""
    counter: Counter = Counter()
    for doc in docs:
        value = doc.get(field)
        if isinstance(value, list):
            counter.update(value)
        elif value is not None:
            counter[value] += 1
    buckets = [
        {"key": key, "doc_count": count}
        for key, count in counter.most_common(size)
    ]
    return buckets


def stats_aggregation(docs: Iterable[Dict[str, Any]], field: str) -> Dict[str, Any]:
    """min/max/avg/sum/count of a numeric field."""
    values = [
        doc[field]
        for doc in docs
        if isinstance(doc.get(field), (int, float))
        and not isinstance(doc.get(field), bool)
    ]
    if not values:
        return {"count": 0, "min": None, "max": None, "avg": None, "sum": 0}
    return {
        "count": len(values),
        "min": min(values),
        "max": max(values),
        "avg": sum(values) / len(values),
        "sum": sum(values),
    }


def histogram_aggregation(
    docs: Iterable[Dict[str, Any]], field: str, interval: float
) -> List[Dict[str, Any]]:
    """Fixed-interval histogram buckets keyed by bucket lower bound."""
    if interval <= 0:
        raise ValueError("interval must be positive")
    counter: Counter = Counter()
    for doc in docs:
        value = doc.get(field)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            bucket = int(value // interval) * interval
            counter[bucket] += 1
    return [
        {"key": key, "doc_count": counter[key]} for key in sorted(counter)
    ]
