"""Text analysis pipelines (Elasticsearch analyzer semantics).

- ``simple``: split on non-letters, lowercase (the analyzer used in the
  paper's Sub1b example).
- ``standard``: split on non-alphanumerics, lowercase, drop English
  stopwords.
- ``whitespace``: split on whitespace only, case preserved.
- ``keyword``: the whole input as a single term.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List

_LETTERS = re.compile(r"[a-zA-Z]+")
_ALNUM = re.compile(r"[a-zA-Z0-9]+")

STOPWORDS = frozenset(
    """a an and are as at be but by for if in into is it no not of on or such
    that the their then there these they this to was will with""".split()
)


def simple_analyzer(text: str) -> List[str]:
    return [t.lower() for t in _LETTERS.findall(text)]


def standard_analyzer(text: str) -> List[str]:
    return [
        token
        for token in (t.lower() for t in _ALNUM.findall(text))
        if token not in STOPWORDS
    ]


def whitespace_analyzer(text: str) -> List[str]:
    return text.split()


def keyword_analyzer(text: str) -> List[str]:
    return [text] if text else []


ANALYZERS: Dict[str, Callable[[str], List[str]]] = {
    "simple": simple_analyzer,
    "standard": standard_analyzer,
    "whitespace": whitespace_analyzer,
    "keyword": keyword_analyzer,
}


def analyze(text: str, analyzer: str = "standard") -> List[str]:
    """Tokenise ``text`` with the named analyzer."""
    try:
        fn = ANALYZERS[analyzer]
    except KeyError:
        raise ValueError(f"unknown analyzer {analyzer!r}") from None
    return fn(text)
