"""Per-field inverted index with term frequencies."""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterable, List, Set


class InvertedIndex:
    """term -> {doc_id: term_frequency} for one analysed field."""

    def __init__(self) -> None:
        self.postings: Dict[str, Dict[Any, int]] = defaultdict(dict)
        self.doc_lengths: Dict[Any, int] = {}

    def add(self, doc_id: Any, tokens: Iterable[str]) -> None:
        tokens = list(tokens)
        self.doc_lengths[doc_id] = len(tokens)
        for token in tokens:
            bucket = self.postings[token]
            bucket[doc_id] = bucket.get(doc_id, 0) + 1

    def remove(self, doc_id: Any) -> None:
        self.doc_lengths.pop(doc_id, None)
        empty_terms: List[str] = []
        for term, bucket in self.postings.items():
            bucket.pop(doc_id, None)
            if not bucket:
                empty_terms.append(term)
        for term in empty_terms:
            del self.postings[term]

    def doc_ids(self, term: str) -> Set[Any]:
        return set(self.postings.get(term, ()))

    def term_frequency(self, term: str, doc_id: Any) -> int:
        return self.postings.get(term, {}).get(doc_id, 0)

    def document_frequency(self, term: str) -> int:
        return len(self.postings.get(term, ()))

    def __len__(self) -> int:
        return len(self.postings)
