"""In-memory database engines standing in for the paper's backends.

Each engine reproduces the data model, write path and query surface of one
family from Table 1 of the paper:

- :mod:`repro.databases.relational` — PostgreSQL / MySQL / Oracle
- :mod:`repro.databases.document` — MongoDB / TokuMX / RethinkDB
- :mod:`repro.databases.columnar` — Cassandra
- :mod:`repro.databases.search` — Elasticsearch
- :mod:`repro.databases.graph` — Neo4j
- :mod:`repro.databases.kv` — Redis (used for Synapse version stores)
"""

from repro.databases.base import Database, EngineStats, FaultPlan

__all__ = ["Database", "EngineStats", "FaultPlan"]
