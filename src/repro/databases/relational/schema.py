"""Table schemas, columns and index declarations."""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.databases.relational.types import ColumnType, Integer
from repro.errors import SchemaError, TypeMismatchError, UnknownColumnError


class Column:
    """A typed column declaration.

    ``default`` may be a value or a zero-argument callable evaluated per row.
    """

    def __init__(
        self,
        name: str,
        column_type: ColumnType,
        nullable: bool = True,
        default: Any = None,
        unique: bool = False,
    ) -> None:
        self.name = name
        self.type = column_type
        self.nullable = nullable
        self.default = default
        self.unique = unique

    def default_value(self) -> Any:
        if callable(self.default):
            return self.default()
        return self.default

    def __repr__(self) -> str:
        return f"<Column {self.name} {self.type.name}>"


class Index:
    """Secondary index over one or more columns."""

    def __init__(self, name: str, columns: Sequence[str], unique: bool = False) -> None:
        if not columns:
            raise SchemaError("index needs at least one column")
        self.name = name
        self.columns = tuple(columns)
        self.unique = unique

    def key_for(self, row: Dict[str, Any]) -> tuple:
        return tuple(row.get(c) for c in self.columns)

    def __repr__(self) -> str:
        return f"<Index {self.name} on {self.columns}>"


PRIMARY_KEY = "id"


class TableSchema:
    """Schema of one table. The primary key is always ``id`` (integer),
    auto-assigned when absent — matching ActiveRecord conventions the
    paper's ORMs rely on for object identity.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        indexes: Optional[Sequence[Index]] = None,
    ) -> None:
        self.name = name
        self.columns: Dict[str, Column] = {}
        if PRIMARY_KEY not in [c.name for c in columns]:
            self.columns[PRIMARY_KEY] = Column(PRIMARY_KEY, Integer(), nullable=False)
        for col in columns:
            if col.name in self.columns:
                raise SchemaError(f"duplicate column {col.name!r} in {name!r}")
            self.columns[col.name] = col
        self.indexes: Dict[str, Index] = {}
        for idx in indexes or []:
            self.add_index(idx)

    # -- schema evolution (live migrations, §4.3) --------------------------

    def add_column(self, column: Column) -> None:
        if column.name in self.columns:
            raise SchemaError(f"column {column.name!r} already exists")
        self.columns[column.name] = column

    def drop_column(self, name: str) -> None:
        if name == PRIMARY_KEY:
            raise SchemaError("cannot drop the primary key")
        if name not in self.columns:
            raise UnknownColumnError(f"no column {name!r} in {self.name!r}")
        del self.columns[name]
        for idx_name in [n for n, i in self.indexes.items() if name in i.columns]:
            del self.indexes[idx_name]

    def add_index(self, index: Index) -> None:
        for col in index.columns:
            if col not in self.columns:
                raise UnknownColumnError(
                    f"index {index.name!r} references unknown column {col!r}"
                )
        if index.name in self.indexes:
            raise SchemaError(f"duplicate index {index.name!r}")
        self.indexes[index.name] = index

    # -- row validation ----------------------------------------------------

    def normalise(self, values: Dict[str, Any], partial: bool = False) -> Dict[str, Any]:
        """Validate types, apply defaults, reject unknown columns.

        With ``partial=True`` (UPDATE) only supplied columns are touched.
        """
        for key in values:
            if key not in self.columns:
                raise UnknownColumnError(f"no column {key!r} in table {self.name!r}")
        out: Dict[str, Any] = {}
        if partial:
            items = [(k, self.columns[k]) for k in values]
        else:
            items = list(self.columns.items())
        for name, col in items:
            if name in values:
                out[name] = col.type.validate(values[name], name)
            elif not partial:
                out[name] = col.type.validate(col.default_value(), name)
            if name != PRIMARY_KEY and not col.nullable and out.get(name) is None:
                if not partial or name in values:
                    raise TypeMismatchError(
                        f"column {name!r} in {self.name!r} is NOT NULL"
                    )
        return out

    def __repr__(self) -> str:
        return f"<TableSchema {self.name} cols={list(self.columns)}>"
