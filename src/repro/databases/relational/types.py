"""Column types for the relational engine.

Each type validates and coerces Python values on write, mirroring the
strictness gap between relational engines and the schemaless stores: the
document engine accepts arbitrary JSON-like values, the relational engine
rejects anything that does not fit the declared column type.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import TypeMismatchError


class ColumnType:
    """Base column type; subclasses override :meth:`coerce`."""

    name = "any"

    def coerce(self, value: Any) -> Any:
        return value

    def validate(self, value: Any, column: str) -> Any:
        if value is None:
            return None
        try:
            return self.coerce(value)
        except (TypeError, ValueError) as exc:
            raise TypeMismatchError(
                f"column {column!r} ({self.name}): bad value {value!r}"
            ) from exc

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self))


class Integer(ColumnType):
    name = "integer"

    def coerce(self, value: Any) -> int:
        if isinstance(value, bool):
            raise TypeError("bool is not an integer")
        if isinstance(value, int):
            return value
        if isinstance(value, str) and value.strip().lstrip("+-").isdigit():
            return int(value)
        raise TypeError(f"not an integer: {value!r}")


class Float(ColumnType):
    name = "float"

    def coerce(self, value: Any) -> float:
        if isinstance(value, bool):
            raise TypeError("bool is not a float")
        if isinstance(value, (int, float)):
            return float(value)
        raise TypeError(f"not a float: {value!r}")


class Text(ColumnType):
    name = "text"

    def coerce(self, value: Any) -> str:
        if isinstance(value, str):
            return value
        raise TypeError(f"not text: {value!r}")


class Boolean(ColumnType):
    name = "boolean"

    def coerce(self, value: Any) -> bool:
        if isinstance(value, bool):
            return value
        raise TypeError(f"not a boolean: {value!r}")


class Json(ColumnType):
    """JSON-serialisable blob. Used e.g. to flatten arrays (Example 3)."""

    name = "json"

    def coerce(self, value: Any) -> Any:
        json.dumps(value)  # raises TypeError when unserialisable
        return value


class Timestamp(ColumnType):
    """Seconds-since-epoch stored as float."""

    name = "timestamp"

    def coerce(self, value: Any) -> float:
        if isinstance(value, bool):
            raise TypeError("bool is not a timestamp")
        if isinstance(value, (int, float)):
            return float(value)
        raise TypeError(f"not a timestamp: {value!r}")
