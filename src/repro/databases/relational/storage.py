"""Row storage and secondary-index maintenance for one table."""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, Optional, Set

from repro.databases.relational.schema import PRIMARY_KEY, Index, TableSchema
from repro.errors import DuplicateKeyError


class TableStorage:
    """Rows of one table plus hash indexes for point lookups.

    Rows are stored as plain dicts keyed by integer primary key; every
    declared index is a hash map from index-key tuple to the set of row
    ids. Copies are returned on read so callers can never mutate storage
    behind the engine's back.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self.rows: Dict[int, Dict[str, Any]] = {}
        self._id_seq = itertools.count(1)
        self._indexes: Dict[str, Dict[tuple, Set[int]]] = {
            name: {} for name in schema.indexes
        }

    # -- id allocation ------------------------------------------------------

    def next_id(self) -> int:
        return next(self._id_seq)

    def note_external_id(self, row_id: int) -> None:
        """Keep the sequence ahead of ids assigned by the application
        (subscribers persist objects with the publisher's ids)."""
        current = next(self._id_seq)
        start = max(current, row_id + 1)
        self._id_seq = itertools.count(start)

    # -- index plumbing ------------------------------------------------------

    def _index_add(self, row: Dict[str, Any]) -> None:
        for name, idx in self.schema.indexes.items():
            key = idx.key_for(row)
            bucket = self._indexes[name].setdefault(key, set())
            if idx.unique and bucket:
                raise DuplicateKeyError(
                    f"unique index {name!r} violated for key {key!r}"
                )
            bucket.add(row[PRIMARY_KEY])

    def _index_remove(self, row: Dict[str, Any]) -> None:
        for name, idx in self.schema.indexes.items():
            key = idx.key_for(row)
            bucket = self._indexes[name].get(key)
            if bucket is not None:
                bucket.discard(row[PRIMARY_KEY])
                if not bucket:
                    del self._indexes[name][key]

    def rebuild_index(self, index: Index) -> None:
        """Populate a freshly-added index from existing rows."""
        table: Dict[tuple, Set[int]] = {}
        for row_id, row in self.rows.items():
            key = index.key_for(row)
            bucket = table.setdefault(key, set())
            if index.unique and bucket:
                raise DuplicateKeyError(
                    f"unique index {index.name!r} violated for key {key!r}"
                )
            bucket.add(row_id)
        self._indexes[index.name] = table

    def drop_index(self, name: str) -> None:
        self._indexes.pop(name, None)

    # -- row operations ------------------------------------------------------

    def insert(self, row: Dict[str, Any]) -> Dict[str, Any]:
        row_id = row.get(PRIMARY_KEY)
        if row_id is None:
            row_id = self.next_id()
            row[PRIMARY_KEY] = row_id
        else:
            self.note_external_id(row_id)
        if row_id in self.rows:
            raise DuplicateKeyError(
                f"duplicate primary key {row_id} in {self.schema.name!r}"
            )
        self._check_unique_columns(row)
        self.rows[row_id] = row
        self._index_add(row)
        return dict(row)

    def replace(self, row_id: int, new_row: Dict[str, Any]) -> Dict[str, Any]:
        old = self.rows[row_id]
        self._index_remove(old)
        try:
            self._check_unique_columns(new_row, exclude_id=row_id)
            self._index_add(new_row)
        except DuplicateKeyError:
            self._index_add(old)
            raise
        self.rows[row_id] = new_row
        return dict(new_row)

    def delete(self, row_id: int) -> Optional[Dict[str, Any]]:
        row = self.rows.pop(row_id, None)
        if row is not None:
            self._index_remove(row)
        return dict(row) if row is not None else None

    def get(self, row_id: int) -> Optional[Dict[str, Any]]:
        row = self.rows.get(row_id)
        return dict(row) if row is not None else None

    def _check_unique_columns(
        self, row: Dict[str, Any], exclude_id: Optional[int] = None
    ) -> None:
        unique_cols = [
            c for c in self.schema.columns.values() if c.unique and c.name != PRIMARY_KEY
        ]
        for col in unique_cols:
            value = row.get(col.name)
            if value is None:
                continue
            for other_id, other in self.rows.items():
                if other_id == exclude_id:
                    continue
                if other.get(col.name) == value:
                    raise DuplicateKeyError(
                        f"unique column {col.name!r} violated with value {value!r}"
                    )

    # -- lookup helpers ------------------------------------------------------

    def ids_for_index_key(self, index_name: str, key: tuple) -> Set[int]:
        return set(self._indexes.get(index_name, {}).get(key, set()))

    def scan(self) -> Iterator[Dict[str, Any]]:
        # Materialise ids first so callers may mutate during iteration.
        for row_id in list(self.rows):
            row = self.rows.get(row_id)
            if row is not None:
                yield dict(row)

    def __len__(self) -> int:
        return len(self.rows)
