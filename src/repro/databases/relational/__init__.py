"""Mini relational engine (PostgreSQL / MySQL / Oracle stand-ins).

Typed schemas, secondary indexes, an expression-tree WHERE planner,
transactions with undo logs and two-phase-commit hooks, and optional
``RETURNING *`` support (present on the PostgreSQL/Oracle-like variants,
absent on the MySQL-like variant, mirroring §4.1 of the paper).
"""

from repro.databases.relational.engine import (
    MySQLLike,
    OracleLike,
    PostgresLike,
    RelationalDatabase,
)
from repro.databases.relational.expression import Col, ALWAYS
from repro.databases.relational.schema import Column, Index, TableSchema
from repro.databases.relational.types import (
    Boolean,
    Float,
    Integer,
    Json,
    Text,
    Timestamp,
)

__all__ = [
    "RelationalDatabase",
    "PostgresLike",
    "MySQLLike",
    "OracleLike",
    "TableSchema",
    "Column",
    "Index",
    "Col",
    "ALWAYS",
    "Integer",
    "Float",
    "Text",
    "Boolean",
    "Json",
    "Timestamp",
]
