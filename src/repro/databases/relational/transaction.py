"""Transactions with undo logs and two-phase-commit hooks.

Synapse hijacks the driver's commit path (§4.2): it turns the local commit
into a 2PC so that (1) the local commit, (2) the version-store increments
and (3) the broker publish either all happen or none do. The hooks below
(`on_prepare`, `on_commit`, `on_abort`) are that hijack point.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import TransactionError

# Undo entries: ("insert", table, row_id) / ("replace", table, row_id, old_row)
# / ("delete", table, old_row)
UndoEntry = Tuple


class Transaction:
    """One transaction over a relational (or document) engine.

    Writes apply to storage immediately and record undo entries; rollback
    replays the undo log in reverse. The owning engine serialises
    transactions with a mutex, giving serialisable isolation — coarse, but
    the paper's algorithms only require that written objects stay locked
    until commit (§4.2 optimisation note).
    """

    PENDING = "pending"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"

    def __init__(self, engine: Any) -> None:
        self.engine = engine
        self.state = self.PENDING
        self.undo_log: List[UndoEntry] = []
        #: Rows written by this transaction, in order — consumed by the
        #: Synapse interceptor to build one message per transaction.
        self.written: List[Dict[str, Any]] = []
        self.on_prepare: List[Callable[["Transaction"], None]] = []
        self.on_commit: List[Callable[["Transaction"], None]] = []
        self.on_abort: List[Callable[["Transaction"], None]] = []

    # -- undo log -----------------------------------------------------------

    def record_insert(self, table: str, row_id: int) -> None:
        self.undo_log.append(("insert", table, row_id))

    def record_replace(self, table: str, row_id: int, old_row: Dict[str, Any]) -> None:
        self.undo_log.append(("replace", table, row_id, old_row))

    def record_delete(self, table: str, old_row: Dict[str, Any]) -> None:
        self.undo_log.append(("delete", table, old_row))

    # -- lifecycle ----------------------------------------------------------

    def _require(self, *states: str) -> None:
        if self.state not in states:
            raise TransactionError(
                f"transaction is {self.state}, expected one of {states}"
            )

    def prepare(self) -> None:
        """Phase one: run prepare hooks; any failure aborts."""
        self._require(self.PENDING)
        try:
            for hook in self.on_prepare:
                hook(self)
        except Exception:
            self.rollback()
            raise
        self.state = self.PREPARED

    def commit(self) -> None:
        self._require(self.PENDING, self.PREPARED)
        if self.state == self.PENDING:
            self.prepare()
        self.state = self.COMMITTED
        self.engine._finish_transaction(self)
        for hook in self.on_commit:
            hook(self)

    def rollback(self) -> None:
        if self.state in (self.COMMITTED, self.ABORTED):
            raise TransactionError(f"cannot rollback a {self.state} transaction")
        for entry in reversed(self.undo_log):
            kind = entry[0]
            if kind == "insert":
                _, table, row_id = entry
                self.engine._undo_insert(table, row_id)
            elif kind == "replace":
                _, table, row_id, old_row = entry
                self.engine._undo_replace(table, row_id, old_row)
            elif kind == "delete":
                _, table, old_row = entry
                self.engine._undo_delete(table, old_row)
        self.state = self.ABORTED
        self.engine._finish_transaction(self)
        for hook in self.on_abort:
            hook(self)

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            if self.state in (self.PENDING, self.PREPARED):
                self.rollback()
            return False
        if self.state in (self.PENDING, self.PREPARED):
            self.commit()
        return False


class TransactionManager:
    """Per-engine transaction bookkeeping: a mutex serialising writers and
    a thread-local current transaction so ORM code need not thread the
    transaction object through every call."""

    def __init__(self) -> None:
        self._mutex = threading.RLock()
        self._local = threading.local()

    def begin(self, engine: Any) -> Transaction:
        if self.current() is not None:
            raise TransactionError("nested transactions are not supported")
        self._mutex.acquire()
        txn = Transaction(engine)
        self._local.txn = txn
        return txn

    def current(self) -> Optional[Transaction]:
        return getattr(self._local, "txn", None)

    def finish(self, txn: Transaction) -> None:
        if self.current() is txn:
            self._local.txn = None
            self._mutex.release()
