"""WHERE-clause expression trees.

``Col("age") >= 21`` builds an expression the planner can both evaluate
against a row and introspect for index-equality candidates.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterable, List, Optional, Tuple


class Expression:
    """Base predicate over a row (``dict`` of column -> value)."""

    def matches(self, row: Dict[str, Any]) -> bool:
        raise NotImplementedError

    def equality_candidates(self) -> List[Tuple[str, Any]]:
        """(column, value) pairs usable for index point-lookups.

        Only conjunctive top-level equalities qualify: the planner may use
        any one of them to narrow the scan, then re-check the full predicate.
        """
        return []

    def columns(self) -> Iterable[str]:
        """Every column referenced anywhere in the predicate."""
        return []

    def __and__(self, other: "Expression") -> "Expression":
        return And(self, other)

    def __or__(self, other: "Expression") -> "Expression":
        return Or(self, other)

    def __invert__(self) -> "Expression":
        return Not(self)


class Always(Expression):
    """Matches every row; the default WHERE clause."""

    def matches(self, row: Dict[str, Any]) -> bool:
        return True

    def __repr__(self) -> str:
        return "ALWAYS"


ALWAYS = Always()


class _Comparison(Expression):
    op = "?"

    def __init__(self, column: str, value: Any) -> None:
        self.column = column
        self.value = value

    def columns(self) -> Iterable[str]:
        return [self.column]

    def __repr__(self) -> str:
        return f"({self.column} {self.op} {self.value!r})"


def _comparable(row_value: Any, target: Any) -> bool:
    """Guard mixed-type comparisons that Python 3 would raise on."""
    if row_value is None or target is None:
        return False
    if isinstance(row_value, (int, float)) and isinstance(target, (int, float)):
        return True
    return type(row_value) is type(target)


class Eq(_Comparison):
    op = "="

    def matches(self, row: Dict[str, Any]) -> bool:
        return row.get(self.column) == self.value

    def equality_candidates(self) -> List[Tuple[str, Any]]:
        return [(self.column, self.value)]


class Ne(_Comparison):
    op = "!="

    def matches(self, row: Dict[str, Any]) -> bool:
        return row.get(self.column) != self.value


class Lt(_Comparison):
    op = "<"

    def matches(self, row: Dict[str, Any]) -> bool:
        v = row.get(self.column)
        return _comparable(v, self.value) and v < self.value


class Le(_Comparison):
    op = "<="

    def matches(self, row: Dict[str, Any]) -> bool:
        v = row.get(self.column)
        return _comparable(v, self.value) and v <= self.value


class Gt(_Comparison):
    op = ">"

    def matches(self, row: Dict[str, Any]) -> bool:
        v = row.get(self.column)
        return _comparable(v, self.value) and v > self.value


class Ge(_Comparison):
    op = ">="

    def matches(self, row: Dict[str, Any]) -> bool:
        v = row.get(self.column)
        return _comparable(v, self.value) and v >= self.value


class In(_Comparison):
    op = "IN"

    def __init__(self, column: str, value: Iterable[Any]) -> None:
        super().__init__(column, tuple(value))
        self._set = set(self.value)

    def matches(self, row: Dict[str, Any]) -> bool:
        return row.get(self.column) in self._set


class Like(_Comparison):
    """SQL LIKE with ``%`` and ``_`` wildcards."""

    op = "LIKE"

    def __init__(self, column: str, value: str) -> None:
        super().__init__(column, value)
        # re.escape leaves % and _ untouched (they are not regex-special).
        pattern = re.escape(value).replace("%", ".*").replace("_", ".")
        self._regex = re.compile(f"^{pattern}$", re.IGNORECASE)

    def matches(self, row: Dict[str, Any]) -> bool:
        v = row.get(self.column)
        return isinstance(v, str) and bool(self._regex.match(v))


class IsNull(Expression):
    def __init__(self, column: str) -> None:
        self.column = column

    def matches(self, row: Dict[str, Any]) -> bool:
        return row.get(self.column) is None

    def columns(self) -> Iterable[str]:
        return [self.column]


class And(Expression):
    def __init__(self, *parts: Expression) -> None:
        self.parts = parts

    def matches(self, row: Dict[str, Any]) -> bool:
        return all(p.matches(row) for p in self.parts)

    def equality_candidates(self) -> List[Tuple[str, Any]]:
        out: List[Tuple[str, Any]] = []
        for p in self.parts:
            out.extend(p.equality_candidates())
        return out

    def columns(self) -> Iterable[str]:
        for p in self.parts:
            yield from p.columns()

    def __repr__(self) -> str:
        return "(" + " AND ".join(map(repr, self.parts)) + ")"


class Or(Expression):
    def __init__(self, *parts: Expression) -> None:
        self.parts = parts

    def matches(self, row: Dict[str, Any]) -> bool:
        return any(p.matches(row) for p in self.parts)

    def columns(self) -> Iterable[str]:
        for p in self.parts:
            yield from p.columns()

    def __repr__(self) -> str:
        return "(" + " OR ".join(map(repr, self.parts)) + ")"


class Not(Expression):
    def __init__(self, inner: Expression) -> None:
        self.inner = inner

    def matches(self, row: Dict[str, Any]) -> bool:
        return not self.inner.matches(row)

    def columns(self) -> Iterable[str]:
        return self.inner.columns()

    def __repr__(self) -> str:
        return f"(NOT {self.inner!r})"


class Col:
    """Column reference with operator overloading: ``Col('age') > 3``."""

    def __init__(self, name: str) -> None:
        self.name = name

    def __eq__(self, other: Any) -> Expression:  # type: ignore[override]
        return Eq(self.name, other)

    def __ne__(self, other: Any) -> Expression:  # type: ignore[override]
        return Ne(self.name, other)

    def __lt__(self, other: Any) -> Expression:
        return Lt(self.name, other)

    def __le__(self, other: Any) -> Expression:
        return Le(self.name, other)

    def __gt__(self, other: Any) -> Expression:
        return Gt(self.name, other)

    def __ge__(self, other: Any) -> Expression:
        return Ge(self.name, other)

    def in_(self, values: Iterable[Any]) -> Expression:
        return In(self.name, values)

    def like(self, pattern: str) -> Expression:
        return Like(self.name, pattern)

    def is_null(self) -> Expression:
        return IsNull(self.name)

    __hash__ = None  # type: ignore[assignment]


def where_from_dict(conditions: Optional[Dict[str, Any]]) -> Expression:
    """Build a conjunction of equalities from a mapping (Mongo-ish sugar)."""
    if not conditions:
        return ALWAYS
    parts: List[Expression] = []
    for column, value in conditions.items():
        if isinstance(value, (list, tuple, set)):
            parts.append(In(column, value))
        else:
            parts.append(Eq(column, value))
    if len(parts) == 1:
        return parts[0]
    return And(*parts)
