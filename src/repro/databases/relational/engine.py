"""The relational engine and its vendor-flavoured variants."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.databases.base import Database
from repro.databases.relational.expression import ALWAYS, Expression
from repro.databases.relational.schema import (
    PRIMARY_KEY,
    Column,
    Index,
    TableSchema,
)
from repro.databases.relational.storage import TableStorage
from repro.databases.relational.transaction import Transaction, TransactionManager
from repro.errors import (
    SchemaError,
    UnknownTableError,
    UnsupportedOperationError,
)

Row = Dict[str, Any]


class RelationalDatabase(Database):
    """In-memory relational engine: typed tables, indexes, WHERE planner,
    transactions, and (on capable variants) ``RETURNING *``."""

    engine_family = "relational"
    supports_transactions = True

    def __init__(self, name: str, **kwargs: Any) -> None:
        super().__init__(name, **kwargs)
        self._tables: Dict[str, TableStorage] = {}
        self._txns = TransactionManager()

    # ------------------------------------------------------------------ DDL

    def create_table(self, schema: TableSchema) -> None:
        with self._lock:
            if schema.name in self._tables:
                raise SchemaError(f"table {schema.name!r} already exists")
            self._tables[schema.name] = TableStorage(schema)

    def drop_table(self, name: str) -> None:
        with self._lock:
            self._storage(name)
            del self._tables[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_schema(self, name: str) -> TableSchema:
        return self._storage(name).schema

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def add_column(self, table: str, column: Column) -> None:
        """ALTER TABLE ADD COLUMN; existing rows get the column's default."""
        with self._lock:
            storage = self._storage(table)
            storage.schema.add_column(column)
            default = column.default_value()
            for row in storage.rows.values():
                row[column.name] = default

    def drop_column(self, table: str, name: str) -> None:
        with self._lock:
            storage = self._storage(table)
            storage.schema.drop_column(name)
            for row in storage.rows.values():
                row.pop(name, None)

    def create_index(self, table: str, index: Index) -> None:
        with self._lock:
            storage = self._storage(table)
            storage.schema.add_index(index)
            storage.rebuild_index(index)

    def drop_index(self, table: str, name: str) -> None:
        with self._lock:
            storage = self._storage(table)
            storage.schema.indexes.pop(name, None)
            storage.drop_index(name)

    # ----------------------------------------------------------------- DML

    def insert(self, table: str, values: Row, returning: bool = False) -> Optional[Row]:
        """INSERT one row; with ``returning`` echo the written row back."""
        self._check_returning(returning)
        with self._lock:
            self._charge_write()
            self._log("insert", table)
            storage = self._storage(table)
            row = storage.schema.normalise(dict(values))
            written = storage.insert(row)
            txn = self._txns.current()
            if txn is not None:
                txn.record_insert(table, written[PRIMARY_KEY])
                txn.written.append({"table": table, "op": "insert", "row": dict(written)})
            return dict(written) if returning else None

    def select(
        self,
        table: str,
        where: Expression = ALWAYS,
        columns: Optional[Sequence[str]] = None,
        order_by: Optional[Any] = None,
        limit: Optional[int] = None,
        offset: int = 0,
        distinct: bool = False,
    ) -> List[Row]:
        """SELECT rows matching ``where``; always includes the primary key
        (Synapse injects primary-key selectors into reads, §4.2).

        ``order_by`` is one ``(column, "asc"|"desc")`` pair or a list of
        them; ``distinct`` dedupes on the projected columns (implies a
        projection without the primary key).
        """
        with self._lock:
            self._charge_read()
            self._log("select", f"{table} WHERE {where!r}")
            storage = self._storage(table)
            rows = list(self._plan(storage, where))
        if order_by is not None:
            pairs = order_by if isinstance(order_by, list) else [order_by]
            for column, direction in reversed(pairs):
                rows.sort(key=lambda r: (r.get(column) is None, r.get(column)),
                          reverse=(direction.lower() == "desc"))
        else:
            rows.sort(key=lambda r: r[PRIMARY_KEY])
        if offset:
            rows = rows[offset:]
        if limit is not None:
            rows = rows[:limit]
        if distinct:
            if columns is None:
                raise UnsupportedOperationError(
                    "DISTINCT needs an explicit column projection"
                )
            seen = set()
            out: List[Row] = []
            for row in rows:
                projected = tuple(row.get(c) for c in columns)
                if projected not in seen:
                    seen.add(projected)
                    out.append(dict(zip(columns, projected)))
            return out
        if columns is not None:
            keep = set(columns) | {PRIMARY_KEY}
            rows = [{k: v for k, v in row.items() if k in keep} for row in rows]
        return rows

    def get(self, table: str, row_id: int) -> Optional[Row]:
        """Point lookup by primary key."""
        with self._lock:
            self._charge_read()
            self.stats.index_lookups += 1
            return self._storage(table).get(row_id)

    def count(self, table: str, where: Expression = ALWAYS) -> int:
        """Aggregation — per §4.2 these reads are *not* true dependencies."""
        with self._lock:
            self._charge_read()
            storage = self._storage(table)
            return sum(1 for _ in self._plan(storage, where))

    def update(
        self,
        table: str,
        where: Expression,
        values: Row,
        returning: bool = False,
    ) -> Any:
        """UPDATE matching rows; returns updated rows (or their count)."""
        self._check_returning(returning)
        with self._lock:
            self._charge_write()
            self._log("update", f"{table} WHERE {where!r}")
            storage = self._storage(table)
            patch = storage.schema.normalise(dict(values), partial=True)
            patch.pop(PRIMARY_KEY, None)
            txn = self._txns.current()
            updated: List[Row] = []
            for row in list(self._plan(storage, where)):
                new_row = dict(row)
                new_row.update(patch)
                storage.replace(row[PRIMARY_KEY], new_row)
                if txn is not None:
                    txn.record_replace(table, row[PRIMARY_KEY], row)
                    txn.written.append(
                        {"table": table, "op": "update", "row": dict(new_row)}
                    )
                updated.append(new_row)
            return updated if returning else len(updated)

    def delete(self, table: str, where: Expression, returning: bool = False) -> Any:
        """DELETE matching rows; returns deleted rows (or their count)."""
        self._check_returning(returning)
        with self._lock:
            self._charge_write()
            self._log("delete", f"{table} WHERE {where!r}")
            self.stats.deletes += 1
            storage = self._storage(table)
            txn = self._txns.current()
            deleted: List[Row] = []
            for row in list(self._plan(storage, where)):
                storage.delete(row[PRIMARY_KEY])
                if txn is not None:
                    txn.record_delete(table, row)
                    txn.written.append({"table": table, "op": "delete", "row": dict(row)})
                deleted.append(row)
            return deleted if returning else len(deleted)

    def join(
        self,
        left: str,
        right: str,
        on: Tuple[str, str],
        where: Expression = ALWAYS,
    ) -> List[Tuple[Row, Row]]:
        """Inner hash join; ``on`` is (left_column, right_column).

        The WHERE predicate applies to the left row. Joins are read
        dependencies on every returned row from both tables (§4.2).
        """
        with self._lock:
            self._charge_read()
            left_rows = list(self._plan(self._storage(left), where))
            right_storage = self._storage(right)
            left_col, right_col = on
            by_key: Dict[Any, List[Row]] = {}
            for row in right_storage.scan():
                by_key.setdefault(row.get(right_col), []).append(row)
            out: List[Tuple[Row, Row]] = []
            for lrow in left_rows:
                for rrow in by_key.get(lrow.get(left_col), []):
                    out.append((lrow, rrow))
            return out

    def aggregate(
        self,
        table: str,
        group_by: Optional[str] = None,
        aggregates: Optional[Dict[str, Tuple[str, str]]] = None,
        where: Expression = ALWAYS,
    ) -> List[Row]:
        """GROUP BY with count/sum/avg/min/max aggregates.

        ``aggregates`` maps output alias -> (function, column); use
        column ``"*"`` with ``count``. Returns one row per group (or a
        single row when ``group_by`` is None). Aggregations are not read
        dependencies (§4.2).
        """
        aggregates = aggregates or {"count": ("count", "*")}
        with self._lock:
            self._charge_read()
            storage = self._storage(table)
            groups: Dict[Any, List[Row]] = {}
            for row in self._plan(storage, where):
                key = row.get(group_by) if group_by is not None else None
                groups.setdefault(key, []).append(row)
        out: List[Row] = []
        for key in sorted(groups, key=lambda k: (k is None, str(k))):
            bucket = groups[key]
            result: Row = {}
            if group_by is not None:
                result[group_by] = key
            for alias, (fn, column) in aggregates.items():
                result[alias] = _aggregate(fn, column, bucket)
            out.append(result)
        return out

    def explain(self, table: str, where: Expression = ALWAYS) -> Dict[str, Any]:
        """Planner introspection: which access path a query would take."""
        storage = self._storage(table)
        schema = storage.schema
        candidates = dict(where.equality_candidates())
        if PRIMARY_KEY in candidates:
            return {"access": "primary_key", "column": PRIMARY_KEY}
        best: Optional[Index] = None
        for index in schema.indexes.values():
            if all(column in candidates for column in index.columns):
                if best is None or len(index.columns) > len(best.columns):
                    best = index
        if best is not None:
            return {"access": "index_lookup", "index": best.name,
                    "columns": list(best.columns)}
        return {"access": "full_scan", "rows": len(storage)}

    # -------------------------------------------------------------- planner

    def _plan(self, storage: TableStorage, where: Expression) -> Iterable[Row]:
        """Pick an access path: primary key, then the *widest* matching
        index (composite indexes win over single-column ones when every
        indexed column has a top-level equality), else full scan. The
        complete predicate is always re-checked."""
        schema = storage.schema
        candidates = dict(where.equality_candidates())
        if PRIMARY_KEY in candidates:
            self.stats.index_lookups += 1
            value = candidates[PRIMARY_KEY]
            row = storage.get(value) if isinstance(value, int) else None
            if row is not None and where.matches(row):
                yield row
            return
        best: Optional[Index] = None
        for index in schema.indexes.values():
            if all(column in candidates for column in index.columns):
                if best is None or len(index.columns) > len(best.columns):
                    best = index
        if best is not None:
            self.stats.index_lookups += 1
            key = tuple(candidates[column] for column in best.columns)
            for row_id in storage.ids_for_index_key(best.name, key):
                row = storage.get(row_id)
                if row is not None and where.matches(row):
                    yield row
            return
        self.stats.scans += 1
        for row in storage.scan():
            if where.matches(row):
                yield row

    # --------------------------------------------------------- transactions

    def begin(self) -> Transaction:
        self.stats.transactions += 1
        return self._txns.begin(self)

    def current_transaction(self) -> Optional[Transaction]:
        return self._txns.current()

    def _finish_transaction(self, txn: Transaction) -> None:
        self._txns.finish(txn)

    # Undo callbacks used by Transaction.rollback -------------------------

    def _undo_insert(self, table: str, row_id: int) -> None:
        with self._lock:
            self._storage(table).delete(row_id)

    def _undo_replace(self, table: str, row_id: int, old_row: Row) -> None:
        with self._lock:
            self._storage(table).replace(row_id, dict(old_row))

    def _undo_delete(self, table: str, old_row: Row) -> None:
        with self._lock:
            self._storage(table).insert(dict(old_row))

    # --------------------------------------------------------------- misc

    def _storage(self, table: str) -> TableStorage:
        try:
            return self._tables[table]
        except KeyError:
            raise UnknownTableError(f"no table {table!r} in {self.name!r}") from None

    def _check_returning(self, returning: bool) -> None:
        if returning and not self.supports_returning:
            raise UnsupportedOperationError(
                f"{self.engine_family} ({type(self).__name__}) has no RETURNING"
            )


def _aggregate(fn: str, column: str, rows: List[Row]) -> Any:
    if fn == "count":
        if column == "*":
            return len(rows)
        return sum(1 for r in rows if r.get(column) is not None)
    values = [
        r[column] for r in rows
        if isinstance(r.get(column), (int, float))
        and not isinstance(r.get(column), bool)
    ]
    if fn == "sum":
        return sum(values)
    if fn == "avg":
        return sum(values) / len(values) if values else None
    if fn == "min":
        return min(values) if values else None
    if fn == "max":
        return max(values) if values else None
    raise UnsupportedOperationError(f"unknown aggregate {fn!r}")


class PostgresLike(RelationalDatabase):
    """PostgreSQL stand-in: full transactions and ``RETURNING *``."""

    engine_family = "postgresql"
    supports_returning = True


class OracleLike(RelationalDatabase):
    """Oracle stand-in: same capabilities as PostgreSQL for our purposes."""

    engine_family = "oracle"
    supports_returning = True


class MySQLLike(RelationalDatabase):
    """MySQL stand-in: no ``RETURNING``, forcing Synapse's extra-read
    intercept protocol (§4.1)."""

    engine_family = "mysql"
    supports_returning = False
