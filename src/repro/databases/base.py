"""Common machinery shared by every in-memory engine.

The engines differ widely in data model and query surface, so the base
class deliberately stays small: identity, statistics, fault injection and
an optional artificial service time used to model relative engine speeds
in benchmarks (the paper's engines have very different write costs, e.g.
PostgreSQL saturating at 12k writes/s vs Elasticsearch at 20k in Fig 13b).
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.clock import Clock, DEFAULT_CLOCK
from repro.errors import FaultInjected


@dataclass
class EngineStats:
    """Operation counters maintained by every engine."""

    reads: int = 0
    writes: int = 0
    deletes: int = 0
    scans: int = 0
    index_lookups: int = 0
    transactions: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "deletes": self.deletes,
            "scans": self.scans,
            "index_lookups": self.index_lookups,
            "transactions": self.transactions,
        }

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.deletes = 0
        self.scans = 0
        self.index_lookups = 0
        self.transactions = 0


@dataclass
class FaultPlan:
    """Declarative fault injection for an engine.

    ``fail_next_writes`` makes the next N write operations raise
    :class:`FaultInjected` (after letting ``skip_next_writes`` through
    first); ``down`` fails every operation until cleared.

    Probabilistic faults (``write_fail_probability`` /
    ``read_fail_probability``) draw from a private RNG that must be
    seeded explicitly via :meth:`seed` (or
    :meth:`set_fault_probabilities`) — chaos runs that seed from global
    state are not reproducible, so an unseeded probabilistic plan is an
    error rather than a silent ``random.random()``.
    """

    fail_next_writes: int = 0
    skip_next_writes: int = 0
    down: bool = False
    write_fail_probability: float = 0.0
    read_fail_probability: float = 0.0
    _rng: Optional[random.Random] = field(default=None, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def seed(self, seed: int) -> "FaultPlan":
        """Install a deterministic RNG for the probabilistic faults."""
        with self._lock:
            self._rng = random.Random(seed)
        return self

    def set_fault_probabilities(
        self,
        write: float = 0.0,
        read: float = 0.0,
        seed: Optional[int] = None,
    ) -> "FaultPlan":
        """Configure random faults; a seed is mandatory (explicitly here
        or through a prior :meth:`seed` call) whenever any probability
        is non-zero."""
        if seed is not None:
            self.seed(seed)
        with self._lock:
            if (write > 0 or read > 0) and self._rng is None:
                raise ValueError(
                    "probabilistic engine faults need an explicit seed: "
                    "call FaultPlan.seed(n) or pass seed= here"
                )
            self.write_fail_probability = write
            self.read_fail_probability = read
        return self

    def check_write(self) -> None:
        with self._lock:
            if self.down:
                raise FaultInjected("engine is down")
            if self.skip_next_writes > 0:
                self.skip_next_writes -= 1
                return
            if self.fail_next_writes > 0:
                self.fail_next_writes -= 1
                raise FaultInjected("injected write failure")
            if self.write_fail_probability > 0:
                self._check_seeded()
                if self._rng.random() < self.write_fail_probability:
                    raise FaultInjected("injected random write failure")

    def check_read(self) -> None:
        with self._lock:
            if self.down:
                raise FaultInjected("engine is down")
            if self.read_fail_probability > 0:
                self._check_seeded()
                if self._rng.random() < self.read_fail_probability:
                    raise FaultInjected("injected random read failure")

    def _check_seeded(self) -> None:
        if self._rng is None:
            raise ValueError(
                "probabilistic engine faults need an explicit seed: "
                "call FaultPlan.seed(n) first"
            )


class Database:
    """Base class for every engine.

    Parameters
    ----------
    name:
        Instance name, used in diagnostics and metrics.
    clock:
        Time source; benchmarks may substitute a :class:`VirtualClock`.
    write_cost, read_cost:
        Optional artificial per-operation service times (seconds) applied
        via ``clock.sleep``. Zero by default; the Fig 13(b) benchmark sets
        them from calibrated measurements to model engine speed ratios.
    """

    #: Marketing-name of the engine family this instance emulates.
    engine_family: str = "abstract"
    #: Whether writes can return the written rows (``RETURNING *``, §4.1).
    supports_returning: bool = False
    #: Whether multi-statement atomic transactions are supported (§4.2).
    supports_transactions: bool = False

    def __init__(
        self,
        name: str,
        clock: Optional[Clock] = None,
        write_cost: float = 0.0,
        read_cost: float = 0.0,
    ) -> None:
        self.name = name
        self.clock = clock or DEFAULT_CLOCK
        self.write_cost = write_cost
        self.read_cost = read_cost
        self.stats = EngineStats()
        self.faults = FaultPlan()
        # Optional mirrors into a shared MetricsRegistry; bound by the
        # owning Service so engine op counts appear in snapshots as
        # engine.<name>.reads / engine.<name>.writes.
        self._metric_reads = None
        self._metric_writes = None
        #: Optional ring buffer of (operation, detail) entries; enable
        #: with :meth:`enable_query_log` for debugging/tests.
        self.query_log = None
        # One engine-wide lock keeps each operation atomic under the
        # threaded worker pools; the in-memory ops are far cheaper than the
        # lock hold times real engines exhibit, so this does not distort
        # relative benchmark shapes.
        self._lock = threading.RLock()

    # -- bookkeeping -------------------------------------------------------

    def bind_metrics(self, registry: Any, prefix: Optional[str] = None) -> None:
        """Mirror per-operation counts into ``registry`` (a
        :class:`repro.runtime.metrics.MetricsRegistry`) under
        ``<prefix>.reads`` / ``<prefix>.writes``."""
        prefix = prefix or f"engine.{self.name}"
        self._metric_reads = registry.counter(f"{prefix}.reads")
        self._metric_writes = registry.counter(f"{prefix}.writes")

    def _charge_write(self) -> None:
        self.faults.check_write()
        self.stats.writes += 1
        if self._metric_writes is not None:
            self._metric_writes.increment()
        if self.write_cost:
            self.clock.sleep(self.write_cost)

    def _charge_read(self) -> None:
        self.faults.check_read()
        self.stats.reads += 1
        if self._metric_reads is not None:
            self._metric_reads.increment()
        if self.read_cost:
            self.clock.sleep(self.read_cost)

    def enable_query_log(self, capacity: int = 256) -> None:
        from collections import deque

        self.query_log = deque(maxlen=capacity)

    def _log(self, operation: str, detail: str) -> None:
        if self.query_log is not None:
            self.query_log.append((operation, detail))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
