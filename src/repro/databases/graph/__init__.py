"""Graph store (Neo4j stand-in): labelled property nodes/edges plus
traversal queries used by recommendation engines (Example 2, §3.3)."""

from repro.databases.graph.engine import GraphDatabase, Neo4jLike

__all__ = ["GraphDatabase", "Neo4jLike"]
