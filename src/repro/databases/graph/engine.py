"""Neo4j-like labelled property graph engine."""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.databases.base import Database
from repro.errors import DatabaseError

Props = Dict[str, Any]


class GraphDatabase(Database):
    """Nodes with labels and properties; typed, optionally-directed edges
    stored in adjacency lists. Traversals are BFS-based, the access
    pattern Neo4j optimises and the reason the paper's recommendation
    subscriber re-shapes friendship rows into edges (Example 2)."""

    engine_family = "graph"
    supports_returning = True
    supports_transactions = False

    def __init__(self, name: str, **kwargs: Any) -> None:
        super().__init__(name, **kwargs)
        self._nodes: Dict[int, Props] = {}
        self._node_labels: Dict[int, str] = {}
        self._by_label: Dict[str, Set[int]] = {}
        # node_id -> edge_type -> set of neighbour node ids
        self._out: Dict[int, Dict[str, Set[int]]] = {}
        self._in: Dict[int, Dict[str, Set[int]]] = {}
        self._edge_props: Dict[Tuple[int, str, int], Props] = {}
        self._id_seq = itertools.count(1)
        # label -> property -> value -> node ids (exact-match index)
        self._prop_index: Dict[Tuple[str, str], Dict[Any, Set[int]]] = {}

    # -- nodes -----------------------------------------------------------

    def create_node(
        self, label: str, properties: Optional[Props] = None, node_id: Optional[int] = None
    ) -> Props:
        with self._lock:
            self._charge_write()
            props = dict(properties or {})
            if node_id is None:
                node_id = props.get("id")
            if node_id is None:
                node_id = next(self._id_seq)
            else:
                current = next(self._id_seq)
                self._id_seq = itertools.count(max(current, int(node_id) + 1))
            if node_id in self._nodes:
                raise DatabaseError(f"node {node_id} already exists")
            props["id"] = node_id
            self._nodes[node_id] = props
            self._node_labels[node_id] = label
            self._by_label.setdefault(label, set()).add(node_id)
            self._index_node(label, node_id, props)
            return dict(props)

    def update_node(self, node_id: int, properties: Props) -> Props:
        with self._lock:
            self._charge_write()
            node = self._require_node(node_id)
            label = self._node_labels[node_id]
            self._unindex_node(label, node_id, node)
            node.update(properties)
            node["id"] = node_id
            self._index_node(label, node_id, node)
            return dict(node)

    def delete_node(self, node_id: int) -> Optional[Props]:
        """Delete a node and all its edges (DETACH DELETE)."""
        with self._lock:
            self._charge_write()
            self.stats.deletes += 1
            node = self._nodes.pop(node_id, None)
            if node is None:
                return None
            label = self._node_labels.pop(node_id)
            self._by_label[label].discard(node_id)
            self._unindex_node(label, node_id, node)
            for neighbour_map, reverse in ((self._out, self._in), (self._in, self._out)):
                for edge_type, neighbours in neighbour_map.pop(node_id, {}).items():
                    for other in neighbours:
                        reverse.get(other, {}).get(edge_type, set()).discard(node_id)
            self._edge_props = {
                key: props
                for key, props in self._edge_props.items()
                if key[0] != node_id and key[2] != node_id
            }
            return dict(node)

    def get_node(self, node_id: int) -> Optional[Props]:
        with self._lock:
            self._charge_read()
            self.stats.index_lookups += 1
            node = self._nodes.get(node_id)
            return dict(node) if node is not None else None

    def has_node(self, node_id: int) -> bool:
        return node_id in self._nodes

    def find_nodes(
        self, label: str, properties: Optional[Props] = None
    ) -> List[Props]:
        """All nodes with the label matching every given property."""
        with self._lock:
            self._charge_read()
            candidates: Iterable[int]
            properties = properties or {}
            indexed = None
            for key, value in properties.items():
                table = self._prop_index.get((label, key))
                if table is not None:
                    self.stats.index_lookups += 1
                    indexed = table.get(value, set())
                    break
            if indexed is not None:
                candidates = indexed
            else:
                self.stats.scans += 1
                candidates = self._by_label.get(label, set())
            out = []
            for node_id in sorted(candidates):
                node = self._nodes.get(node_id)
                if node is None:
                    continue
                if all(node.get(k) == v for k, v in properties.items()):
                    out.append(dict(node))
            return out

    def count_nodes(self, label: Optional[str] = None) -> int:
        if label is None:
            return len(self._nodes)
        return len(self._by_label.get(label, ()))

    def create_property_index(self, label: str, prop: str) -> None:
        with self._lock:
            table: Dict[Any, Set[int]] = {}
            for node_id in self._by_label.get(label, set()):
                value = self._nodes[node_id].get(prop)
                table.setdefault(value, set()).add(node_id)
            self._prop_index[(label, prop)] = table

    # -- edges -----------------------------------------------------------

    def create_edge(
        self,
        src: int,
        edge_type: str,
        dst: int,
        properties: Optional[Props] = None,
        directed: bool = True,
    ) -> None:
        with self._lock:
            self._charge_write()
            self._require_node(src)
            self._require_node(dst)
            self._out.setdefault(src, {}).setdefault(edge_type, set()).add(dst)
            self._in.setdefault(dst, {}).setdefault(edge_type, set()).add(src)
            if properties:
                self._edge_props[(src, edge_type, dst)] = dict(properties)
            if not directed:
                self._out.setdefault(dst, {}).setdefault(edge_type, set()).add(src)
                self._in.setdefault(src, {}).setdefault(edge_type, set()).add(dst)
                if properties:
                    self._edge_props[(dst, edge_type, src)] = dict(properties)

    def delete_edge(
        self, src: int, edge_type: str, dst: int, directed: bool = True
    ) -> None:
        with self._lock:
            self._charge_write()
            self.stats.deletes += 1
            self._out.get(src, {}).get(edge_type, set()).discard(dst)
            self._in.get(dst, {}).get(edge_type, set()).discard(src)
            self._edge_props.pop((src, edge_type, dst), None)
            if not directed:
                self._out.get(dst, {}).get(edge_type, set()).discard(src)
                self._in.get(src, {}).get(edge_type, set()).discard(dst)
                self._edge_props.pop((dst, edge_type, src), None)

    def has_edge(self, src: int, edge_type: str, dst: int) -> bool:
        return dst in self._out.get(src, {}).get(edge_type, set())

    def neighbours(self, node_id: int, edge_type: str) -> Set[int]:
        with self._lock:
            self._charge_read()
            return set(self._out.get(node_id, {}).get(edge_type, set()))

    def count_edges(self, edge_type: Optional[str] = None) -> int:
        total = 0
        for adj in self._out.values():
            for etype, targets in adj.items():
                if edge_type is None or etype == edge_type:
                    total += len(targets)
        return total

    def edge_properties(self, src: int, edge_type: str, dst: int) -> Props:
        return dict(self._edge_props.get((src, edge_type, dst), {}))

    # -- traversal ---------------------------------------------------------

    def traverse(
        self, start: int, edge_type: str, max_depth: int
    ) -> Dict[int, int]:
        """BFS: reachable node ids -> depth (start excluded)."""
        with self._lock:
            self._charge_read()
            self._require_node(start)
            depths: Dict[int, int] = {start: 0}
            frontier = deque([start])
            while frontier:
                current = frontier.popleft()
                depth = depths[current]
                if depth >= max_depth:
                    continue
                for neighbour in self._out.get(current, {}).get(edge_type, set()):
                    if neighbour not in depths:
                        depths[neighbour] = depth + 1
                        frontier.append(neighbour)
            depths.pop(start)
            return depths

    def shortest_path(self, src: int, dst: int, edge_type: str) -> Optional[List[int]]:
        """Unweighted shortest path as a node-id list, or None."""
        with self._lock:
            self._charge_read()
            self._require_node(src)
            self._require_node(dst)
            if src == dst:
                return [src]
            parents: Dict[int, int] = {src: src}
            frontier = deque([src])
            while frontier:
                current = frontier.popleft()
                for neighbour in self._out.get(current, {}).get(edge_type, set()):
                    if neighbour in parents:
                        continue
                    parents[neighbour] = current
                    if neighbour == dst:
                        path = [dst]
                        while path[-1] != src:
                            path.append(parents[path[-1]])
                        return list(reversed(path))
                    frontier.append(neighbour)
            return None

    def recommend(
        self,
        node_id: int,
        relation: str,
        liked: str,
        depth: int = 2,
    ) -> List[Tuple[int, int]]:
        """'Things my network likes that I don't': walk ``relation`` to
        ``depth``, collect ``liked`` targets, rank by endorsement count.
        This is the friends-of-friends query of Example 2."""
        with self._lock:
            self._charge_read()
            network = self.traverse(node_id, relation, depth)
            own = self._out.get(node_id, {}).get(liked, set())
            counts: Dict[int, int] = {}
            for other in network:
                for target in self._out.get(other, {}).get(liked, set()):
                    if target not in own:
                        counts[target] = counts.get(target, 0) + 1
            return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))

    def degree(self, node_id: int, edge_type: str, direction: str = "out") -> int:
        """Number of incident edges of a type."""
        with self._lock:
            self._charge_read()
            table = self._out if direction == "out" else self._in
            return len(table.get(node_id, {}).get(edge_type, set()))

    def common_neighbours(self, a: int, b: int, edge_type: str) -> Set[int]:
        """Mutual neighbours — the classic link-prediction feature."""
        with self._lock:
            self._charge_read()
            na = self._out.get(a, {}).get(edge_type, set())
            nb = self._out.get(b, {}).get(edge_type, set())
            return set(na) & set(nb)

    # -- internals -----------------------------------------------------------

    def _require_node(self, node_id: int) -> Props:
        node = self._nodes.get(node_id)
        if node is None:
            raise DatabaseError(f"no node {node_id}")
        return node

    def _index_node(self, label: str, node_id: int, props: Props) -> None:
        for (ilabel, prop), table in self._prop_index.items():
            if ilabel == label:
                table.setdefault(props.get(prop), set()).add(node_id)

    def _unindex_node(self, label: str, node_id: int, props: Props) -> None:
        for (ilabel, prop), table in self._prop_index.items():
            if ilabel == label:
                bucket = table.get(props.get(prop))
                if bucket is not None:
                    bucket.discard(node_id)


class Neo4jLike(GraphDatabase):
    """Neo4j stand-in."""

    engine_family = "neo4j"
