"""Redis-like in-memory key/value store.

The version-store algorithms of §4.2 run as atomic LUA scripts on Redis
to avoid round trips and to simplify the 2PC. :meth:`RedisLike.eval`
reproduces that: the callable executes under the store lock, seeing and
mutating state atomically.

``crash()`` wipes memory, modelling the version-store deaths that trigger
generation bumps (publisher side) or partial bootstraps (subscriber side)
in §4.4.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.databases.base import Database
from repro.errors import FaultInjected


class RedisLike(Database):
    """Strings, counters and hashes, plus atomic scripts."""

    engine_family = "redis"
    supports_returning = True

    def __init__(self, name: str, **kwargs: Any) -> None:
        super().__init__(name, **kwargs)
        self._data: Dict[str, Any] = {}
        self._down = False
        self.script_calls = 0

    # -- failure model -----------------------------------------------------

    def crash(self) -> None:
        """Lose all state and refuse service until :meth:`restart`."""
        with self._lock:
            self._data.clear()
            self._down = True

    def restart(self) -> None:
        with self._lock:
            self._down = False

    @property
    def is_down(self) -> bool:
        return self._down

    def _check_up(self) -> None:
        if self._down:
            raise FaultInjected(f"redis {self.name!r} is down")

    # -- basic ops ------------------------------------------------------------

    def get(self, key: str) -> Any:
        with self._lock:
            self._check_up()
            self._charge_read()
            return self._data.get(key)

    def set(self, key: str, value: Any) -> None:
        with self._lock:
            self._check_up()
            self._charge_write()
            self._data[key] = value

    def delete(self, key: str) -> bool:
        with self._lock:
            self._check_up()
            self._charge_write()
            return self._data.pop(key, None) is not None

    def incr(self, key: str, amount: int = 1) -> int:
        with self._lock:
            self._check_up()
            self._charge_write()
            value = self._data.get(key, 0) + amount
            self._data[key] = value
            return value

    def exists(self, key: str) -> bool:
        with self._lock:
            self._check_up()
            return key in self._data

    # -- hashes ----------------------------------------------------------------

    def hget(self, key: str, field: str) -> Any:
        with self._lock:
            self._check_up()
            self._charge_read()
            table = self._data.get(key)
            return table.get(field) if isinstance(table, dict) else None

    def hset(self, key: str, field: str, value: Any) -> None:
        with self._lock:
            self._check_up()
            self._charge_write()
            table = self._data.setdefault(key, {})
            table[field] = value

    def hgetall(self, key: str) -> Dict[str, Any]:
        with self._lock:
            self._check_up()
            self._charge_read()
            table = self._data.get(key)
            return dict(table) if isinstance(table, dict) else {}

    def hincrby(self, key: str, field: str, amount: int = 1) -> int:
        with self._lock:
            self._check_up()
            self._charge_write()
            table = self._data.setdefault(key, {})
            table[field] = table.get(field, 0) + amount
            return table[field]

    # -- atomic scripts ----------------------------------------------------------

    def eval(self, script: Callable[["RedisLike"], Any]) -> Any:
        """Run ``script(self)`` atomically (LUA-script equivalent).

        The script may call any method on the store; the RLock makes the
        whole execution one atomic step relative to other clients.
        """
        with self._lock:
            self._check_up()
            self.script_calls += 1
            return script(self)

    def keys(self, prefix: str = "") -> List[str]:
        with self._lock:
            self._check_up()
            return sorted(k for k in self._data if k.startswith(prefix))

    def flushall(self) -> None:
        with self._lock:
            self._check_up()
            self._data.clear()

    def dbsize(self) -> int:
        with self._lock:
            self._check_up()
            return len(self._data)
