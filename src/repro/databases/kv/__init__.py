"""Redis stand-in used for Synapse version stores (§4.2)."""

from repro.databases.kv.redis import RedisLike

__all__ = ["RedisLike"]
