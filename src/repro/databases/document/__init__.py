"""Schemaless document store (MongoDB / TokuMX / RethinkDB stand-ins)."""

from repro.databases.document.engine import (
    DocumentDatabase,
    MongoLike,
    RethinkDBLike,
    TokuMXLike,
)
from repro.databases.document.filters import matches_filter

__all__ = [
    "DocumentDatabase",
    "MongoLike",
    "TokuMXLike",
    "RethinkDBLike",
    "matches_filter",
]
