"""MongoDB-style filter evaluation.

Supports dot-path field access, the common ``$``-operators, and Mongo's
array-membership semantics (a scalar condition matches when the field is
an array containing a matching element).
"""

from __future__ import annotations

import re
from typing import Any, Dict

from repro.errors import DatabaseError

_MISSING = object()


def get_path(doc: Dict[str, Any], path: str) -> Any:
    """Resolve ``a.b.c`` through nested dicts; returns _MISSING when absent."""
    current: Any = doc
    for part in path.split("."):
        if isinstance(current, dict):
            if part not in current:
                return _MISSING
            current = current[part]
        elif isinstance(current, list) and part.isdigit():
            idx = int(part)
            if idx >= len(current):
                return _MISSING
            current = current[idx]
        else:
            return _MISSING
    return current


def set_path(doc: Dict[str, Any], path: str, value: Any) -> None:
    """Set ``a.b.c`` creating intermediate dicts."""
    parts = path.split(".")
    current = doc
    for part in parts[:-1]:
        nxt = current.get(part)
        if not isinstance(nxt, dict):
            nxt = {}
            current[part] = nxt
        current = nxt
    current[parts[-1]] = value


def unset_path(doc: Dict[str, Any], path: str) -> None:
    parts = path.split(".")
    current: Any = doc
    for part in parts[:-1]:
        current = current.get(part)
        if not isinstance(current, dict):
            return
    if isinstance(current, dict):
        current.pop(parts[-1], None)


def _compare(op: str, value: Any, target: Any) -> bool:
    if op == "$ne":
        return value != target
    if op == "$exists":
        return (value is not _MISSING) == bool(target)
    if value is _MISSING or value is None:
        return False
    if op == "$gt":
        return _safe_order(value, target) and value > target
    if op == "$gte":
        return _safe_order(value, target) and value >= target
    if op == "$lt":
        return _safe_order(value, target) and value < target
    if op == "$lte":
        return _safe_order(value, target) and value <= target
    if op == "$in":
        return value in target
    if op == "$nin":
        return value not in target
    if op == "$regex":
        return isinstance(value, str) and re.search(target, value) is not None
    if op == "$all":
        return isinstance(value, list) and all(t in value for t in target)
    if op == "$size":
        return isinstance(value, list) and len(value) == target
    if op == "$elemMatch":
        if not isinstance(value, list):
            return False
        return any(
            matches_filter(element, target) if isinstance(element, dict)
            else _match_condition(element, target)
            for element in value
        )
    raise DatabaseError(f"unknown filter operator {op!r}")


def _safe_order(a: Any, b: Any) -> bool:
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return not isinstance(a, bool) and not isinstance(b, bool)
    return type(a) is type(b)


def _match_condition(value: Any, condition: Any) -> bool:
    """Match one field value against one condition (scalar or op-dict)."""
    if isinstance(condition, dict) and any(k.startswith("$") for k in condition):
        checks = []
        for op, target in condition.items():
            if op in ("$in", "$nin", "$all") and isinstance(value, list):
                # Array field: $in matches when any element is in target.
                if op == "$in":
                    checks.append(any(v in target for v in value))
                    continue
                if op == "$nin":
                    checks.append(all(v not in target for v in value))
                    continue
            checks.append(_compare(op, value, target))
        return all(checks)
    # Scalar equality; Mongo semantics: an array field matches when it
    # contains the scalar (or equals the whole array).
    if isinstance(value, list) and not isinstance(condition, list):
        return condition in value
    if value is _MISSING:
        return condition is None
    return value == condition


def matches_filter(doc: Dict[str, Any], query: Dict[str, Any]) -> bool:
    """True when the document satisfies the whole filter document."""
    for key, condition in query.items():
        if key == "$or":
            if not any(matches_filter(doc, sub) for sub in condition):
                return False
            continue
        if key == "$and":
            if not all(matches_filter(doc, sub) for sub in condition):
                return False
            continue
        if key == "$nor":
            if any(matches_filter(doc, sub) for sub in condition):
                return False
            continue
        if not _match_condition(get_path(doc, key), condition):
            return False
    return True


def apply_update(doc: Dict[str, Any], update: Dict[str, Any]) -> Dict[str, Any]:
    """Apply a Mongo update document; returns the new document.

    A document without ``$``-operators replaces everything but ``_id``.
    """
    if not any(k.startswith("$") for k in update):
        new_doc = dict(update)
        new_doc["_id"] = doc["_id"]
        return new_doc
    new_doc = _deep_copy(doc)
    for op, spec in update.items():
        if op == "$set":
            for path, value in spec.items():
                set_path(new_doc, path, value)
        elif op == "$unset":
            for path in spec:
                unset_path(new_doc, path)
        elif op == "$inc":
            for path, delta in spec.items():
                current = get_path(new_doc, path)
                base = current if isinstance(current, (int, float)) else 0
                set_path(new_doc, path, base + delta)
        elif op == "$push":
            for path, value in spec.items():
                current = get_path(new_doc, path)
                arr = list(current) if isinstance(current, list) else []
                arr.append(value)
                set_path(new_doc, path, arr)
        elif op == "$pull":
            for path, value in spec.items():
                current = get_path(new_doc, path)
                if isinstance(current, list):
                    set_path(new_doc, path, [v for v in current if v != value])
        elif op == "$addToSet":
            for path, value in spec.items():
                current = get_path(new_doc, path)
                arr = list(current) if isinstance(current, list) else []
                if value not in arr:
                    arr.append(value)
                set_path(new_doc, path, arr)
        else:
            raise DatabaseError(f"unknown update operator {op!r}")
    return new_doc


def _deep_copy(value: Any) -> Any:
    if isinstance(value, dict):
        return {k: _deep_copy(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_deep_copy(v) for v in value]
    return value
