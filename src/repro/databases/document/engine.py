"""Document store engine and its vendor variants."""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.databases.base import Database
from repro.databases.document.filters import (
    _deep_copy,
    apply_update,
    get_path,
    matches_filter,
    set_path,
    _MISSING,
)
from repro.databases.relational.transaction import Transaction, TransactionManager
from repro.errors import DatabaseError, DuplicateKeyError, UnsupportedOperationError

Doc = Dict[str, Any]


class _Collection:
    """One schemaless collection with optional hash indexes on dot-paths."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.docs: Dict[int, Doc] = {}
        self._id_seq = itertools.count(1)
        self.indexes: Dict[str, Dict[Any, set]] = {}

    def next_id(self) -> int:
        return next(self._id_seq)

    def note_external_id(self, doc_id: int) -> None:
        if isinstance(doc_id, int):
            current = next(self._id_seq)
            self._id_seq = itertools.count(max(current, doc_id + 1))

    def index_add(self, doc: Doc) -> None:
        for path, table in self.indexes.items():
            value = get_path(doc, path)
            if value is _MISSING:
                value = None
            key = _index_key(value)
            table.setdefault(key, set()).add(doc["_id"])

    def index_remove(self, doc: Doc) -> None:
        for path, table in self.indexes.items():
            value = get_path(doc, path)
            if value is _MISSING:
                value = None
            key = _index_key(value)
            bucket = table.get(key)
            if bucket is not None:
                bucket.discard(doc["_id"])
                if not bucket:
                    del table[key]


def _index_key(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(value)
    if isinstance(value, dict):
        return tuple(sorted(value.items()))
    return value


class DocumentDatabase(Database):
    """MongoDB-style API: ``insert_one``, ``find``, ``update_one``...

    Writes return the written document (MongoDB exposes the written rows,
    so Synapse's cheap intercept path applies, §4.1).
    """

    engine_family = "document"
    supports_returning = True
    supports_transactions = False

    def __init__(self, name: str, **kwargs: Any) -> None:
        super().__init__(name, **kwargs)
        self._collections: Dict[str, _Collection] = {}
        self._txns = TransactionManager()

    # -- collections --------------------------------------------------------

    def collection(self, name: str) -> _Collection:
        col = self._collections.get(name)
        if col is None:
            col = _Collection(name)
            self._collections[name] = col
        return col

    def collection_names(self) -> List[str]:
        return sorted(self._collections)

    def drop_collection(self, name: str) -> None:
        self._collections.pop(name, None)

    def create_index(self, collection: str, path: str) -> None:
        with self._lock:
            col = self.collection(collection)
            if path in col.indexes:
                return
            table: Dict[Any, set] = {}
            for doc in col.docs.values():
                value = get_path(doc, path)
                if value is _MISSING:
                    value = None
                table.setdefault(_index_key(value), set()).add(doc["_id"])
            col.indexes[path] = table

    # -- writes --------------------------------------------------------------

    def insert_one(self, collection: str, doc: Doc) -> Doc:
        with self._lock:
            self._charge_write()
            col = self.collection(collection)
            new_doc = _deep_copy(doc)
            doc_id = new_doc.get("_id")
            if doc_id is None:
                doc_id = col.next_id()
                new_doc["_id"] = doc_id
            else:
                col.note_external_id(doc_id)
            if doc_id in col.docs:
                raise DuplicateKeyError(f"duplicate _id {doc_id} in {collection!r}")
            col.docs[doc_id] = new_doc
            col.index_add(new_doc)
            txn = self._txns.current()
            if txn is not None:
                txn.record_insert(collection, doc_id)
                txn.written.append(
                    {"table": collection, "op": "insert", "row": _deep_copy(new_doc)}
                )
            return _deep_copy(new_doc)

    def update_one(
        self, collection: str, query: Dict[str, Any], update: Dict[str, Any]
    ) -> Optional[Doc]:
        """Update the first matching document; returns the new document."""
        with self._lock:
            self._charge_write()
            col = self.collection(collection)
            for doc in self._plan(col, query):
                new_doc = apply_update(doc, update)
                old = col.docs[doc["_id"]]
                col.index_remove(old)
                col.docs[doc["_id"]] = new_doc
                col.index_add(new_doc)
                txn = self._txns.current()
                if txn is not None:
                    txn.record_replace(collection, doc["_id"], old)
                    txn.written.append(
                        {"table": collection, "op": "update", "row": _deep_copy(new_doc)}
                    )
                return _deep_copy(new_doc)
            return None

    def update_many(
        self, collection: str, query: Dict[str, Any], update: Dict[str, Any]
    ) -> List[Doc]:
        """Update all matching documents; returns the new documents."""
        with self._lock:
            self._charge_write()
            col = self.collection(collection)
            out: List[Doc] = []
            for doc in list(self._plan(col, query)):
                new_doc = apply_update(doc, update)
                old = col.docs[doc["_id"]]
                col.index_remove(old)
                col.docs[doc["_id"]] = new_doc
                col.index_add(new_doc)
                txn = self._txns.current()
                if txn is not None:
                    txn.record_replace(collection, doc["_id"], old)
                    txn.written.append(
                        {"table": collection, "op": "update", "row": _deep_copy(new_doc)}
                    )
                out.append(_deep_copy(new_doc))
            return out

    def delete_one(self, collection: str, query: Dict[str, Any]) -> Optional[Doc]:
        with self._lock:
            self._charge_write()
            self.stats.deletes += 1
            col = self.collection(collection)
            for doc in self._plan(col, query):
                removed = col.docs.pop(doc["_id"])
                col.index_remove(removed)
                txn = self._txns.current()
                if txn is not None:
                    txn.record_delete(collection, removed)
                    txn.written.append(
                        {"table": collection, "op": "delete", "row": _deep_copy(removed)}
                    )
                return _deep_copy(removed)
            return None

    def delete_many(self, collection: str, query: Dict[str, Any]) -> List[Doc]:
        with self._lock:
            self._charge_write()
            self.stats.deletes += 1
            col = self.collection(collection)
            out: List[Doc] = []
            for doc in list(self._plan(col, query)):
                removed = col.docs.pop(doc["_id"])
                col.index_remove(removed)
                txn = self._txns.current()
                if txn is not None:
                    txn.record_delete(collection, removed)
                    txn.written.append(
                        {"table": collection, "op": "delete", "row": _deep_copy(removed)}
                    )
                out.append(_deep_copy(removed))
            return out

    # -- reads ---------------------------------------------------------------

    def find(
        self,
        collection: str,
        query: Optional[Dict[str, Any]] = None,
        sort: Optional[Tuple[str, int]] = None,
        limit: Optional[int] = None,
        projection: Optional[List[str]] = None,
    ) -> List[Doc]:
        with self._lock:
            self._charge_read()
            col = self.collection(collection)
            docs = [_deep_copy(d) for d in self._plan(col, query or {})]
        if sort is not None:
            path, direction = sort
            docs.sort(
                key=lambda d: _sort_key(get_path(d, path)),
                reverse=(direction < 0),
            )
        else:
            docs.sort(key=lambda d: d["_id"])
        if limit is not None:
            docs = docs[:limit]
        if projection is not None:
            keep = set(projection) | {"_id"}
            docs = [{k: v for k, v in d.items() if k in keep} for d in docs]
        return docs

    def find_one(
        self, collection: str, query: Optional[Dict[str, Any]] = None
    ) -> Optional[Doc]:
        docs = self.find(collection, query, limit=1)
        return docs[0] if docs else None

    def get(self, collection: str, doc_id: Any) -> Optional[Doc]:
        with self._lock:
            self._charge_read()
            self.stats.index_lookups += 1
            doc = self.collection(collection).docs.get(doc_id)
            return _deep_copy(doc) if doc is not None else None

    def count(self, collection: str, query: Optional[Dict[str, Any]] = None) -> int:
        with self._lock:
            self._charge_read()
            col = self.collection(collection)
            return sum(1 for _ in self._plan(col, query or {}))

    def distinct(
        self, collection: str, path: str, query: Optional[Dict[str, Any]] = None
    ) -> List[Any]:
        """Distinct values of a (dot-)path; array values contribute each
        element (MongoDB semantics)."""
        values = set()
        for doc in self.find(collection, query, limit=None):
            value = get_path(doc, path)
            if value is _MISSING:
                continue
            if isinstance(value, list):
                values.update(value)
            else:
                values.add(value)
        return sorted(values, key=lambda v: (str(type(v)), str(v)))

    def aggregate(
        self, collection: str, pipeline: List[Dict[str, Any]]
    ) -> List[Doc]:
        """A subset of the MongoDB aggregation pipeline:
        ``$match``, ``$group`` (``$sum``/``$avg``/``$min``/``$max``,
        numeric literal 1 for counting), ``$sort``, ``$limit``,
        ``$unwind``."""
        docs = self.find(collection, limit=None)
        for stage in pipeline:
            if len(stage) != 1:
                raise DatabaseError("each pipeline stage has exactly one key")
            op, spec = next(iter(stage.items()))
            if op == "$match":
                docs = [d for d in docs if matches_filter(d, spec)]
            elif op == "$unwind":
                path = spec.lstrip("$")
                unwound = []
                for doc in docs:
                    value = get_path(doc, path)
                    if isinstance(value, list):
                        for element in value:
                            clone = _deep_copy(doc)
                            set_path(clone, path, element)
                            unwound.append(clone)
                docs = unwound
            elif op == "$group":
                docs = _group_stage(docs, spec)
            elif op == "$sort":
                for path, direction in reversed(list(spec.items())):
                    docs.sort(
                        key=lambda d, p=path: _sort_key(get_path(d, p)),
                        reverse=(direction < 0),
                    )
            elif op == "$limit":
                docs = docs[:spec]
            else:
                raise DatabaseError(f"unsupported pipeline stage {op!r}")
        return docs

    # -- planner ---------------------------------------------------------------

    def _plan(self, col: _Collection, query: Dict[str, Any]) -> Iterable[Doc]:
        if "_id" in query and not isinstance(query["_id"], dict):
            self.stats.index_lookups += 1
            doc = col.docs.get(query["_id"])
            if doc is not None and matches_filter(doc, query):
                yield doc
            return
        for path, condition in query.items():
            if path in col.indexes and not isinstance(condition, (dict, list)):
                self.stats.index_lookups += 1
                for doc_id in list(col.indexes[path].get(_index_key(condition), ())):
                    doc = col.docs.get(doc_id)
                    if doc is not None and matches_filter(doc, query):
                        yield doc
                return
        self.stats.scans += 1
        for doc_id in list(col.docs):
            doc = col.docs.get(doc_id)
            if doc is not None and matches_filter(doc, query):
                yield doc

    # -- transactions (TokuMX-like variants) -----------------------------------

    def begin(self) -> Transaction:
        if not self.supports_transactions:
            raise UnsupportedOperationError(
                f"{self.engine_family} does not support transactions"
            )
        self.stats.transactions += 1
        return self._txns.begin(self)

    def current_transaction(self) -> Optional[Transaction]:
        return self._txns.current()

    def _finish_transaction(self, txn: Transaction) -> None:
        self._txns.finish(txn)

    def _undo_insert(self, collection: str, doc_id: Any) -> None:
        with self._lock:
            col = self.collection(collection)
            doc = col.docs.pop(doc_id, None)
            if doc is not None:
                col.index_remove(doc)

    def _undo_replace(self, collection: str, doc_id: Any, old_doc: Doc) -> None:
        with self._lock:
            col = self.collection(collection)
            current = col.docs.get(doc_id)
            if current is not None:
                col.index_remove(current)
            col.docs[doc_id] = _deep_copy(old_doc)
            col.index_add(col.docs[doc_id])

    def _undo_delete(self, collection: str, old_doc: Doc) -> None:
        with self._lock:
            col = self.collection(collection)
            col.docs[old_doc["_id"]] = _deep_copy(old_doc)
            col.index_add(col.docs[old_doc["_id"]])


def _group_stage(docs: List[Doc], spec: Dict[str, Any]) -> List[Doc]:
    """The $group stage: _id expression plus accumulator fields."""
    id_expr = spec.get("_id")
    groups: Dict[Any, List[Doc]] = {}
    order: List[Any] = []
    for doc in docs:
        if isinstance(id_expr, str) and id_expr.startswith("$"):
            key = get_path(doc, id_expr[1:])
            key = None if key is _MISSING else key
        else:
            key = id_expr
        hashable = tuple(key) if isinstance(key, list) else key
        if hashable not in groups:
            groups[hashable] = []
            order.append((hashable, key))
        groups[hashable].append(doc)
    out: List[Doc] = []
    for hashable, key in order:
        bucket = groups[hashable]
        result: Doc = {"_id": key}
        for field, accumulator in spec.items():
            if field == "_id":
                continue
            op, operand = next(iter(accumulator.items()))
            if isinstance(operand, str) and operand.startswith("$"):
                values = [
                    v for v in (get_path(d, operand[1:]) for d in bucket)
                    if isinstance(v, (int, float)) and not isinstance(v, bool)
                ]
            else:
                values = [operand] * len(bucket)
            if op == "$sum":
                result[field] = sum(values)
            elif op == "$avg":
                result[field] = sum(values) / len(values) if values else None
            elif op == "$min":
                result[field] = min(values) if values else None
            elif op == "$max":
                result[field] = max(values) if values else None
            else:
                raise DatabaseError(f"unsupported accumulator {op!r}")
        out.append(result)
    return out


def _sort_key(value: Any) -> Tuple[int, Any]:
    if value is _MISSING or value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    if isinstance(value, str):
        return (2, value)
    return (3, str(value))


class MongoLike(DocumentDatabase):
    """MongoDB stand-in: schemaless, no multi-document transactions."""

    engine_family = "mongodb"


class TokuMXLike(DocumentDatabase):
    """TokuMX stand-in: MongoDB API *with* multi-document transactions,
    which is why Crowdtap migrated to it (§6.5)."""

    engine_family = "tokumx"
    supports_transactions = True


class RethinkDBLike(DocumentDatabase):
    """RethinkDB stand-in: document model with changefeed-friendly writes."""

    engine_family = "rethinkdb"
