"""Replica digests: Merkle trees over published-attribute projections.

Divergence detection must work *across* engines — a relational publisher
replicated into document, graph or search subscribers (the
heterogeneous-store norm) — so rows are hashed at the ORM/mapper level
where Synapse already lives: each side projects its raw storage rows
onto the *subscribed remote attribute names* and the values are
normalised through the same JSON round trip the wire format uses. Two
replicas that hold the same logical state therefore hash identically no
matter which engine stores them.

Object hashes are bucketed by a stable hash of the object id into a
fixed number of leaves and folded into a Merkle tree, so two trees built
independently on either side align structurally and
:meth:`MerkleTree.diff` can descend only into differing subtrees —
comparisons scale with divergence, not dataset size.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.marshal import marshal_attributes
from repro.versionstore.hashring import stable_hash

#: Default leaf count: plenty of descent resolution for test/demo-sized
#: datasets while keeping empty-tree construction trivially cheap.
DEFAULT_LEAVES = 64
DEFAULT_FANOUT = 4


def _canonical(value: Any) -> Any:
    """Normalise a value through the wire format's JSON round trip so
    engine-specific representations (tuples vs lists, etc.) compare
    equal across replicas."""
    return json.loads(json.dumps(value, sort_keys=True, default=str))


def _id_key(row_id: Any) -> str:
    """Stable leaf-bucket key for an object id (ids survive the JSON
    wire format unchanged, so both sides derive the same key)."""
    return json.dumps(row_id, sort_keys=True, default=str)


def row_digest(projection: Dict[str, Any]) -> str:
    """Hash of one logical row (its projected attribute dict)."""
    payload = json.dumps(_canonical(projection), sort_keys=True)
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()


@dataclass
class MerkleDiff:
    """Result of a Merkle descent between two aligned trees."""

    #: Object ids whose row hashes differ or that exist on one side only.
    divergent_ids: List[Any]
    #: Internal + leaf node comparisons performed during the descent —
    #: the evidence that detection work scales with divergence.
    nodes_compared: int


class MerkleTree:
    """A fixed-shape Merkle tree over ``{id: row_hash}``.

    ``leaves`` and ``fanout`` fix the shape, so any two trees built with
    the same parameters align node-for-node and can be diffed by
    descent regardless of which objects each side holds.
    """

    def __init__(
        self,
        object_hashes: Dict[Any, str],
        leaves: int = DEFAULT_LEAVES,
        fanout: int = DEFAULT_FANOUT,
    ) -> None:
        if leaves < 1:
            raise ValueError("need at least one leaf")
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        self.leaves = leaves
        self.fanout = fanout
        #: leaf index -> {id_key: (original_id, row_hash)}
        self._buckets: Dict[int, Dict[str, Tuple[Any, str]]] = {}
        for row_id, row_hash in object_hashes.items():
            key = _id_key(row_id)
            bucket = self._buckets.setdefault(self._leaf_for(key), {})
            bucket[key] = (row_id, row_hash)
        self._levels = self._build_levels()

    def _leaf_for(self, id_key: str) -> int:
        return stable_hash(id_key) % self.leaves

    def _build_levels(self) -> List[List[str]]:
        """``levels[0]`` is the leaf row; the last level is ``[root]``."""
        leaf_level: List[str] = []
        for i in range(self.leaves):
            bucket = self._buckets.get(i)
            if not bucket:
                leaf_level.append("")  # empty bucket: sentinel hash
                continue
            payload = json.dumps(
                sorted((key, row_hash) for key, (_, row_hash) in bucket.items())
            )
            leaf_level.append(hashlib.sha1(payload.encode("utf-8")).hexdigest())
        levels = [leaf_level]
        while len(levels[-1]) > 1:
            below = levels[-1]
            above: List[str] = []
            for start in range(0, len(below), self.fanout):
                chunk = below[start:start + self.fanout]
                if any(chunk):
                    joined = "|".join(chunk)
                    above.append(hashlib.sha1(joined.encode("utf-8")).hexdigest())
                else:
                    above.append("")  # all-empty subtree stays sentinel
            levels.append(above)
        return levels

    @property
    def root(self) -> str:
        return self._levels[-1][0]

    @property
    def total_objects(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def bucket_ids(self, leaf_index: int) -> List[Any]:
        bucket = self._buckets.get(leaf_index, {})
        return [row_id for row_id, _ in bucket.values()]

    def has(self, row_id: Any) -> bool:
        """Whether this replica holds ``row_id`` (multi-publisher audits
        must ignore rows owned by a different publisher)."""
        key = _id_key(row_id)
        return key in self._buckets.get(self._leaf_for(key), {})

    def diff(self, other: "MerkleTree") -> MerkleDiff:
        """Merkle descent: compare roots, recurse only into differing
        subtrees, and at differing leaves compare per-object hashes."""
        if (self.leaves, self.fanout) != (other.leaves, other.fanout):
            raise ValueError("cannot diff trees of different shapes")
        nodes_compared = 1
        if self.root == other.root:
            return MerkleDiff(divergent_ids=[], nodes_compared=nodes_compared)
        divergent: List[Any] = []
        # Frontier of differing node indices, walked from root to leaves.
        frontier = [0]
        for level in range(len(self._levels) - 2, -1, -1):
            next_frontier: List[int] = []
            for parent in frontier:
                start = parent * self.fanout
                stop = min(start + self.fanout, len(self._levels[level]))
                for child in range(start, stop):
                    nodes_compared += 1
                    if self._levels[level][child] != other._levels[level][child]:
                        next_frontier.append(child)
            frontier = next_frontier
            if not frontier:
                break
        for leaf in frontier:
            divergent.extend(self._diff_bucket(other, leaf))
        return MerkleDiff(divergent_ids=divergent, nodes_compared=nodes_compared)

    def _diff_bucket(self, other: "MerkleTree", leaf: int) -> Iterable[Any]:
        mine = self._buckets.get(leaf, {})
        theirs = other._buckets.get(leaf, {})
        for key in sorted(set(mine) | set(theirs)):
            here, there = mine.get(key), theirs.get(key)
            if here is None:
                yield there[0]
            elif there is None or here[1] != there[1]:
                yield here[0]

    # -- wire form (control-plane digest exchange) ---------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON form: shape parameters + per-object hashes. The levels are
        *not* shipped — both sides rebuild them deterministically, so a
        tampered/truncated payload cannot desynchronize the descent."""
        objects = []
        for bucket in self._buckets.values():
            for row_id, row_hash in bucket.values():
                objects.append([row_id, row_hash])
        return {"leaves": self.leaves, "fanout": self.fanout,
                "objects": objects}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MerkleTree":
        return cls(
            {row_id: row_hash for row_id, row_hash in data["objects"]},
            leaves=data["leaves"],
            fanout=data["fanout"],
        )


@dataclass
class ModelDigest:
    """One replica's digest of one model's published projection."""

    app: str
    model_name: str
    #: Remote (publisher-side) attribute names covered by the digest.
    fields: List[str]
    tree: MerkleTree
    built_from: int = 0  # rows scanned
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def root(self) -> str:
        return self.tree.root

    def divergent_ids(self, other: "ModelDigest") -> MerkleDiff:
        if self.fields != other.fields:
            raise ValueError(
                f"digest field sets differ: {self.fields} vs {other.fields}"
            )
        return self.tree.diff(other.tree)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "app": self.app,
            "model_name": self.model_name,
            "fields": list(self.fields),
            "built_from": self.built_from,
            "tree": self.tree.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModelDigest":
        return cls(
            app=data["app"],
            model_name=data["model_name"],
            fields=list(data["fields"]),
            tree=MerkleTree.from_dict(data["tree"]),
            built_from=data.get("built_from", 0),
        )


def _raw_rows(model_cls: type) -> List[Dict[str, Any]]:
    """Every row of a model straight from its mapper — no interceptor,
    no read-dependency tracking (audits must not perturb the pipeline)."""
    return model_cls.__mapper__._do_where({}, None, None)


def publisher_model_digest(
    publisher_service: Any,
    model_name: str,
    remote_fields: Optional[List[str]] = None,
    leaves: int = DEFAULT_LEAVES,
) -> Optional[ModelDigest]:
    """Digest of the publisher's authoritative replica of ``model_name``.

    ``remote_fields`` restricts the projection (a subscriber that
    subscribes to a subset must be compared on that subset); defaults to
    every published attribute. Returns None for unknown or DB-less
    (ephemeral) models, which have no replica to digest.
    """
    model_cls = publisher_service.registry.get(model_name)
    if model_cls is None or model_cls.__mapper__ is None:
        return None
    published = publisher_service.published_fields_for(model_cls)
    if published is None or model_cls.__mapper__.db is None:
        return None
    fields = sorted(remote_fields if remote_fields is not None else published)
    hashes: Dict[Any, str] = {}
    rows = _raw_rows(model_cls)
    for row in rows:
        # marshal_attributes is the exact wire projection — virtual
        # attributes call their getters, like a real publish would.
        hashes[row["id"]] = row_digest(marshal_attributes(model_cls, row, fields))
    return ModelDigest(
        app=publisher_service.name,
        model_name=model_name,
        fields=fields,
        tree=MerkleTree(hashes, leaves=leaves),
        built_from=len(rows),
    )


def subscriber_model_digest(
    service: Any,
    spec: Any,
    leaves: int = DEFAULT_LEAVES,
) -> Optional[ModelDigest]:
    """Digest of a subscriber's replica, projected back onto the remote
    attribute names via the subscription's field map — so a renamed
    (``as:``) attribute still hashes against its publisher name."""
    model_cls = spec.model_cls
    if spec.observer or model_cls.__mapper__ is None or model_cls.__mapper__.db is None:
        return None
    fields = sorted(spec.fields)
    hashes: Dict[Any, str] = {}
    rows = _raw_rows(model_cls)
    for row in rows:
        projection = {remote: row.get(local) for remote, local in spec.fields.items()}
        hashes[row["id"]] = row_digest(projection)
    return ModelDigest(
        app=service.name,
        model_name=spec.model_name,
        fields=fields,
        tree=MerkleTree(hashes, leaves=leaves),
        built_from=len(rows),
    )
