"""Anti-entropy: replica digests, lag auditing and targeted repair.

The paper's only remedy for lost write-messages is heavyweight: the
§6.5 production incident (message loss → causal deadlock) ends in a
queue decommission and a full §4.4 re-bootstrap of the subscriber —
O(dataset) work to heal what may be a single lost message. This
subsystem makes divergence *detectable* and *repairable* at fine grain:

- :mod:`repro.repair.digest` computes per-model **replica digests** —
  Merkle trees keyed by object id over the published-attribute
  projection, built through the per-engine mappers so a relational
  publisher and a document/graph/search subscriber hash identical
  logical rows;
- :mod:`repro.repair.auditor` runs the **ReplicationAuditor**, comparing
  publisher vs subscriber digests plus broker and version-store
  watermarks to tell transit *lag* (messages queued or in flight) from
  *loss* (divergence with an idle queue), pinpointing divergent objects
  by Merkle descent;
- :mod:`repro.repair.repairer` performs **targeted repair**:
  re-publishing only the divergent objects as ordinary versioned write
  messages through the existing publisher path, so recovery costs
  O(divergence) instead of O(dataset) and no queue is decommissioned.
"""

from repro.repair.auditor import (
    AuditReport,
    LagReport,
    ModelAudit,
    ReplicationAuditor,
)
from repro.repair.digest import (
    MerkleTree,
    ModelDigest,
    publisher_model_digest,
    row_digest,
    subscriber_model_digest,
)
from repro.repair.repairer import RepairResult, repair_subscriber

__all__ = [
    "AuditReport",
    "LagReport",
    "MerkleTree",
    "ModelAudit",
    "ModelDigest",
    "RepairResult",
    "ReplicationAuditor",
    "publisher_model_digest",
    "repair_subscriber",
    "row_digest",
    "subscriber_model_digest",
]
