"""Targeted repair: re-publish only the divergent objects.

The paper's §6.5 remedy for lost write-messages is a queue decommission
followed by a full §4.4 re-bootstrap — O(dataset) to heal what may be a
handful of lost messages. Targeted repair instead walks an audit
report's divergent ids and re-publishes exactly those objects through
the normal publisher machinery: write-dep locks, version-store counter
bumps, the Fig 6(b) wire format and broker fan-out, so repair traffic
is ordinary (versioned, ordered, traced) pub/sub traffic.

Repair messages are flagged ``repair=True``. The subscriber applies
them with fresh-or-discard semantics and *always* fast-forwards each
object's dependency counter to the carried version — healing the
counter deficit a lost message left behind, which is what un-wedges a
causally deadlocked queue without decommissioning it. Rows the
publisher no longer holds are repaired as delete operations, removing
subscriber-side ghosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.dependencies import dep_name
from repro.core.marshal import build_message, marshal_operation
from repro.errors import SynapseError
from repro.repair.auditor import AuditReport, ReplicationAuditor
from repro.runtime.tracing import STAGE_REPAIR_PUBLISH, trace_now

#: Divergent objects batched per repair message. Small enough that one
#: repair message stays comparable to ordinary transactional messages,
#: large enough to amortise lock/version round trips.
REPAIR_BATCH_SIZE = 25


@dataclass
class RepairResult:
    """What one repair run did, and whether it worked."""

    subscriber: str
    #: (publisher, model_name) -> ids re-published (updates and deletes).
    repaired: Dict[Any, List[Any]] = field(default_factory=dict)
    messages_published: int = 0
    deletes_published: int = 0
    #: The audit that drove the repair.
    audit: Optional[AuditReport] = None
    #: Post-repair audit (None when ``reaudit=False``).
    verification: Optional[AuditReport] = None

    @property
    def objects_repaired(self) -> int:
        return sum(len(ids) for ids in self.repaired.values())

    @property
    def verified_in_sync(self) -> bool:
        return self.verification is not None and self.verification.in_sync

    def summary_lines(self) -> List[str]:
        lines = [f"repair of subscriber {self.subscriber!r}:"]
        for (publisher, model_name), ids in sorted(self.repaired.items()):
            lines.append(
                f"  {publisher}/{model_name}: re-published "
                f"{sorted(ids, key=repr)}"
            )
        lines.append(
            f"  {self.objects_repaired} objects in "
            f"{self.messages_published} repair messages "
            f"({self.deletes_published} deletes)"
        )
        if self.verification is not None:
            lines.append(
                "  post-repair audit: "
                + ("replicas digest-equal" if self.verified_in_sync
                   else f"{self.verification.divergent_total} still divergent")
            )
        return lines


def repair_subscriber(
    service: Any,
    publisher_name: Optional[str] = None,
    report: Optional[AuditReport] = None,
    reaudit: bool = True,
    batch_size: int = REPAIR_BATCH_SIZE,
) -> RepairResult:
    """Audit (unless ``report`` is given), re-publish divergent objects,
    drain the subscriber, and re-audit to verify digest equality."""
    auditor = ReplicationAuditor(service)
    if report is None:
        report = auditor.audit(publisher_name)
    result = RepairResult(subscriber=service.name, audit=report)
    registry = service.ecosystem.metrics

    control = service.ecosystem.control
    for audit in report.models:
        if not audit.divergent_ids:
            continue
        if not control.known(audit.publisher):
            raise SynapseError(
                f"cannot repair from unknown publisher {audit.publisher!r}"
            )
        # The repair trigger is a control-plane request: the publisher's
        # own handler re-publishes the divergent objects, wherever (and
        # in whichever process) that publisher lives.
        outcome = control.publish_repairs(
            audit.publisher, audit.model_name, audit.divergent_ids,
            batch_size=batch_size,
        )
        ids = outcome["ids"]
        result.messages_published += outcome["messages_published"]
        result.deletes_published += outcome["deletes_published"]
        registry.counter(
            f"repair.{audit.publisher}.republished"
        ).increment(len(ids))
        result.repaired[(audit.publisher, audit.model_name)] = ids

    # Repair messages flow through the ordinary queue; drain applies them.
    service.subscriber.drain()
    if reaudit:
        result.verification = auditor.audit(publisher_name)
    recorder = getattr(service.ecosystem, "recorder", None)
    if recorder is not None:
        recorder.record_event(
            "repair.run",
            subscriber=service.name,
            objects_repaired=result.objects_repaired,
            messages_published=result.messages_published,
            deletes_published=result.deletes_published,
            verified_in_sync=result.verified_in_sync,
        )
    return result


def publish_repairs(
    publisher_service: Any,
    model_name: str,
    divergent_ids: List[Any],
    batch_size: int = REPAIR_BATCH_SIZE,
) -> Dict[str, Any]:
    """Re-publish ``divergent_ids`` of one model as repair messages.

    Publisher-side: runs under the publisher's own control-plane handler
    (``publish_repairs`` op), so the subscriber that requested the repair
    never touches this service's objects. Returns a JSON-serializable
    summary: ``{"ids", "messages_published", "deletes_published"}``.
    """
    summary: Dict[str, Any] = {
        "ids": [], "messages_published": 0, "deletes_published": 0,
    }
    model_cls = publisher_service.registry.get(model_name)
    if model_cls is None or model_cls.__mapper__ is None \
            or model_cls.__mapper__.db is None:
        return summary
    pub_fields = publisher_service.published_fields_for(model_cls)
    if pub_fields is None:
        return summary
    clock = publisher_service.ecosystem.clock
    tracer = publisher_service.ecosystem.tracer
    store = publisher_service.publisher_version_store
    table = model_cls.table_name()
    mapper = model_cls.__mapper__
    repaired: List[Any] = []

    for start in range(0, len(divergent_ids), batch_size):
        batch = divergent_ids[start:start + batch_size]
        operations: List[Dict[str, Any]] = []
        write_deps: List[str] = []
        for row_id in batch:
            row = mapper._do_find(row_id)
            if row is None:
                # The publisher no longer holds it: the subscriber's copy
                # is a ghost — repair it away with a delete.
                operations.append({
                    "operation": "delete",
                    "types": model_cls.type_chain(),
                    "id": row_id,
                    "attributes": {},
                })
                summary["deletes_published"] += 1
            else:
                operations.append(
                    marshal_operation("update", model_cls, row, pub_fields)
                )
            write_deps.append(dep_name(publisher_service.name, table, row_id))
            repaired.append(row_id)

        trace = tracer.begin(publisher_service.name)
        publish_start = trace_now() if trace is not None else 0.0
        locks = store.acquire_write_locks(write_deps)
        try:
            versions = publisher_service.publisher._register_with_recovery(
                [], write_deps, trace
            )
        finally:
            store.release_locks(locks)
        message = build_message(
            app=publisher_service.name,
            operations=operations,
            dependencies=versions,
            published_at=clock.now(),
            generation=publisher_service.current_generation(),
            repair=True,
        )
        if trace is not None:
            trace.add(STAGE_REPAIR_PUBLISH, publish_start,
                      trace_now() - publish_start)
            message.trace = trace
        publisher_service.broker.publish(message)
        summary["messages_published"] += 1
    summary["ids"] = repaired
    return summary
