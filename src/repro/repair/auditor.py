"""The ReplicationAuditor: digest comparison + watermark lag accounting.

An audit answers two questions per (publisher, subscriber) pair:

1. **Is the subscriber behind, and is it lag or loss?** Broker queue
   stats (queued + delivered-but-unacked) and version-store watermark
   deficits distinguish the two: divergence *with* messages still in
   transit is ordinary lag and will heal by draining; divergence with an
   idle queue and a persistent counter deficit is the §6.5 loss
   signature and needs repair.
2. **Exactly which objects diverge?** Per-model Merkle digests are
   compared by descent, touching only the differing subtrees.

Audits read raw mapper rows and version-store counters only — they
never publish, lock, or perturb the pipeline, so a periodic audit is
safe to run against a live ecosystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import SynapseError
from repro.repair.digest import (
    DEFAULT_LEAVES,
    ModelDigest,
    subscriber_model_digest,
)
from repro.runtime.tracing import STAGE_AUDIT_DIFF, STAGE_AUDIT_DIGEST, trace_now


@dataclass
class ModelAudit:
    """Digest comparison of one subscribed model against its publisher."""

    publisher: str
    model_name: str
    fields: List[str]
    publisher_objects: int
    subscriber_objects: int
    divergent_ids: List[Any]
    #: Merkle nodes compared during descent (1 when roots match).
    nodes_compared: int
    publisher_root: str
    subscriber_root: str

    @property
    def in_sync(self) -> bool:
        return not self.divergent_ids


@dataclass
class LagReport:
    """Transit/watermark accounting for one publisher binding."""

    queued: int = 0
    in_flight: int = 0
    published: int = 0
    acked: int = 0
    decommissioned: bool = False
    #: Sum of per-dependency version-counter deficits vs the publisher.
    version_lag: int = 0
    #: Deficit attributable to deliberate flow-control shedding,
    #: already excluded from ``version_lag`` (backpressure, not loss).
    shed_deficit: int = 0
    #: Committed-but-unpublished CDC outbox entries on the publisher.
    #: Outbox-tail lag is transit, not §6.5 loss: the entries are
    #: durable and the poller will publish them (docs/cdc.md).
    outbox_pending: int = 0

    @property
    def in_transit(self) -> int:
        return self.queued + self.in_flight + self.outbox_pending


@dataclass
class AuditReport:
    """Everything one audit run learned about one subscriber service."""

    subscriber: str
    models: List[ModelAudit] = field(default_factory=list)
    #: publisher app -> transit/watermark lag.
    lag: Dict[str, LagReport] = field(default_factory=dict)
    elapsed: float = 0.0

    @property
    def divergent_total(self) -> int:
        return sum(len(m.divergent_ids) for m in self.models)

    @property
    def in_sync(self) -> bool:
        return self.divergent_total == 0

    @property
    def suspected_loss(self) -> bool:
        """Divergence while nothing is queued or in flight: the messages
        that would have healed it are gone (§6.5), not merely late."""
        return self.divergent_total > 0 and all(
            report.in_transit == 0 for report in self.lag.values()
        )

    def divergent_for(self, publisher: str, model_name: str) -> List[Any]:
        for audit in self.models:
            if (audit.publisher, audit.model_name) == (publisher, model_name):
                return list(audit.divergent_ids)
        return []

    def summary_lines(self) -> List[str]:
        """Human-readable rendering for the CLI and demos."""
        lines = [f"audit of subscriber {self.subscriber!r}:"]
        for app, report in sorted(self.lag.items()):
            state = "DECOMMISSIONED" if report.decommissioned else (
                "in transit" if report.in_transit else "idle"
            )
            line = (
                f"  {app}: queued={report.queued} in_flight={report.in_flight} "
                f"version_lag={report.version_lag}"
            )
            if report.shed_deficit:
                line += f" shed_deficit={report.shed_deficit}"
            if report.outbox_pending:
                line += f" outbox_pending={report.outbox_pending}"
            lines.append(line + f" [{state}]")
        for audit in self.models:
            status = "in sync" if audit.in_sync else (
                f"DIVERGED ids={sorted(audit.divergent_ids, key=repr)}"
            )
            lines.append(
                f"  {audit.publisher}/{audit.model_name}: "
                f"{audit.publisher_objects} vs {audit.subscriber_objects} objects, "
                f"{audit.nodes_compared} merkle nodes compared — {status}"
            )
        verdict = "replicas digest-equal" if self.in_sync else (
            "suspected LOSS (idle queues, persistent divergence)"
            if self.suspected_loss else "divergence may be transit lag"
        )
        lines.append(f"  verdict: {verdict}")
        return lines


class ReplicationAuditor:
    """Periodic (or on-demand) divergence auditor for one subscriber.

    ``interval`` (seconds, ecosystem clock) gates :meth:`maybe_audit`
    for callers that poll from a worker loop; :meth:`audit` always runs.
    """

    def __init__(self, service: Any, leaves: int = DEFAULT_LEAVES,
                 interval: Optional[float] = None) -> None:
        self.service = service
        self.leaves = leaves
        self.interval = interval
        self._last_run: Optional[float] = None
        registry = service.ecosystem.metrics
        self._audits = registry.counter(f"repair.{service.name}.audits")
        self._divergent = registry.counter(f"repair.{service.name}.divergent_objects")
        self._nodes = registry.counter(f"repair.{service.name}.merkle_nodes_compared")
        self._audit_time = registry.histogram(f"repair.{service.name}.audit_time")

    # ------------------------------------------------------------------

    def maybe_audit(self, publisher_name: Optional[str] = None) -> Optional[AuditReport]:
        """Run an audit if ``interval`` has elapsed since the last one."""
        clock = self.service.ecosystem.clock
        now = clock.monotonic()
        if (
            self.interval is not None
            and self._last_run is not None
            and now - self._last_run < self.interval
        ):
            return None
        return self.audit(publisher_name)

    def audit(self, publisher_name: Optional[str] = None) -> AuditReport:
        service = self.service
        clock = service.ecosystem.clock
        tracer = service.ecosystem.tracer
        trace = tracer.begin(service.name)
        start = clock.monotonic()
        self._last_run = start
        report = AuditReport(subscriber=service.name)

        apps = sorted({spec.from_app for spec in service.subscriber.specs.values()})
        if publisher_name is not None:
            if publisher_name not in apps:
                raise SynapseError(
                    f"{service.name!r} does not subscribe to {publisher_name!r}"
                )
            apps = [publisher_name]

        for app in apps:
            report.lag[app] = self._lag_report(app)
        for (from_app, model_name), spec in sorted(service.subscriber.specs.items()):
            if from_app not in apps:
                continue
            audit = self._audit_model(from_app, spec, trace)
            if audit is not None:
                report.models.append(audit)

        report.elapsed = clock.monotonic() - start
        self._audits.increment()
        self._divergent.increment(report.divergent_total)
        self._nodes.increment(sum(m.nodes_compared for m in report.models))
        self._audit_time.record(report.elapsed)
        if trace is not None:
            tracer.record(trace)
        recorder = getattr(service.ecosystem, "recorder", None)
        if recorder is not None and report.divergent_total:
            # Suspected loss (idle queues + persistent divergence) is the
            # §6.5 signature: an anomaly, so the evidence gets dumped.
            # Divergence with traffic still in transit is ordinary lag.
            kind = "audit.suspected_loss" if report.suspected_loss \
                else "audit.divergence"
            recorder.record_event(
                kind,
                severity="anomaly" if report.suspected_loss else "info",
                subscriber=service.name,
                divergent_objects=report.divergent_total,
                version_lag=sum(r.version_lag for r in report.lag.values()),
            )
        return report

    # ------------------------------------------------------------------

    def _lag_report(self, app: str) -> LagReport:
        service = self.service
        report = LagReport()
        stats = service.broker.queue_stats(service.name).get(service.name)
        if stats is not None:
            report.queued = stats["queued"]
            report.in_flight = stats["in_flight"]
            report.published = stats["published"]
            report.acked = stats["acked"]
            report.decommissioned = bool(stats["decommissioned"])
        # CDC outbox tail on the publisher: committed raw writes the
        # poller has not published yet count as in transit, so an audit
        # taken mid-tail reports lag rather than suspected loss.
        report.outbox_pending = service.ecosystem.control.outbox_lag(app)
        # Publisher watermark read: a control-plane request (None when
        # the publisher is unreachable — then lag stays transit-only).
        watermarks = service.ecosystem.control.watermarks(app)
        if watermarks is not None:
            deficits = service.subscriber_version_store.deficits(watermarks)
            # Deliberate flow-control sheds are backpressure, not loss:
            # reconcile the queue's shed ledger (trimmed to what is
            # still unhealed) and keep it out of the loss signal.
            forgiven: Dict[str, int] = {}
            queue = service.subscriber.queue
            if queue is not None and queue.flow is not None:
                forgiven = queue.flow.reconcile_shed(app, deficits)
            report.shed_deficit = sum(forgiven.values())
            report.version_lag = sum(
                max(0, behind - forgiven.get(dep, 0))
                for dep, behind in deficits.items()
            )
        return report

    def _audit_model(self, app: str, spec: Any, trace: Any) -> Optional[ModelAudit]:
        service = self.service
        digest_start = trace_now() if trace is not None else 0.0
        # Merkle digest exchange: the publisher's handler builds and
        # serializes its digest; only hashes cross the service boundary.
        pub_digest = service.ecosystem.control.model_digest(
            app, spec.model_name,
            remote_fields=list(spec.fields), leaves=self.leaves,
        )
        sub_digest = subscriber_model_digest(service, spec, leaves=self.leaves)
        if trace is not None:
            trace.add(STAGE_AUDIT_DIGEST, digest_start, trace_now() - digest_start)
        if pub_digest is None or sub_digest is None:
            return None  # DB-less on either side: nothing to digest
        diff_start = trace_now() if trace is not None else 0.0
        diff = pub_digest.divergent_ids(sub_digest)
        divergent = diff.divergent_ids
        if self._is_multi_publisher(spec):
            # Fig 3: the local table merges rows from several publishers;
            # rows this publisher does not own are not divergence.
            divergent = [i for i in divergent if pub_digest.tree.has(i)]
        if trace is not None:
            trace.add(STAGE_AUDIT_DIFF, diff_start, trace_now() - diff_start)
        return ModelAudit(
            publisher=app,
            model_name=spec.model_name,
            fields=pub_digest.fields,
            publisher_objects=pub_digest.tree.total_objects,
            subscriber_objects=sub_digest.tree.total_objects,
            divergent_ids=divergent,
            nodes_compared=diff.nodes_compared,
            publisher_root=pub_digest.root,
            subscriber_root=sub_digest.root,
        )

    def _is_multi_publisher(self, spec: Any) -> bool:
        return sum(
            1 for other in self.service.subscriber.specs.values()
            if other.model_cls is spec.model_cls
        ) > 1


def _digest_pair(service: Any, spec: Any, leaves: int = DEFAULT_LEAVES):
    """(publisher digest, subscriber digest) for one spec — test helper."""
    return (
        service.ecosystem.control.model_digest(
            spec.from_app, spec.model_name,
            remote_fields=list(spec.fields), leaves=leaves,
        ),
        subscriber_model_digest(service, spec, leaves=leaves),
    )


# Re-exported for callers that only need the dataclass names.
__all__ = [
    "AuditReport",
    "LagReport",
    "ModelAudit",
    "ModelDigest",
    "ReplicationAuditor",
]
