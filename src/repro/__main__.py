"""CLI entry point: ``python -m repro <command>``.

Commands:
    demo quickstart|social|crowdtap|migration|analytics|fig8
        run one of the example scenarios
    topology social|crowdtap [--dot]
        print the service topology (optionally GraphViz DOT)
    metrics [--trace]
        run a small publisher->subscriber scenario and print the
        MetricsRegistry snapshot; with --trace, also print the
        per-stage spans of one end-to-end traced message
    conformance [--seeds N] [--mode causal|global|weak] [--crash]
                [--seed K --faults F --generation-bump --queue-limit Q]
        deterministic delivery-semantics conformance: directed race
        scenarios plus a seeded-schedule sweep over the real
        queue/subscriber/version-store code; with --seed K, replay one
        schedule and dump its violations and trace tail
    watch [--once] [--rounds N] [--interval S] [--writes N]
          [--prometheus] [--json] [--cluster]
        live replication-health console over a demo two-service
        workload: per-link p50/p99 lag, SLO status, throughput and
        flight-recorder counts each round; --once runs a single round
        (the CI smoke mode), --prometheus/--json switch the exposition;
        --cluster drives the 2-shard demo instead and renders the
        federated view — every series labeled with its shard, health
        merged across both OS processes through the control plane
    trace [<uid>] [--operations N] [--timeout S]
        run the 2-shard demo with every message sampled and print one
        assembled cross-shard trace (the given uid, else the first uid
        both shards hold spans for): publisher-side intercept/route/
        forward and subscriber-side dwell/apply spans from different
        OS processes on one normalized timeline, with per-hop transit
        latency and the critical path; exits 0 iff at least two shards
        contributed spans
    flow --demo [--writes N] [--queue-limit Q]
        flow-control subsystem demo: flood a small bounded queue and
        watch graduated backpressure shed weak publishes before the
        kill cliff, then a hot-object update storm coalesce and drain
        through batched group-committed applies; exits 0 iff shedding
        and coalescing both happened and the queue survived
    views --demo [--writes N]
        subscriber read-path demo: derived read models (count, sum,
        top-k, per-author feeds) maintained incrementally in the apply
        path behind a versioned cache; checks every aggregate against
        full recomputation (INV_VIEW), exercises miss/hit/invalidate,
        and kill-and-restarts to prove the restore rebuild is exact
    shard --demo [--operations N] [--timeout S]
        process-sharded runtime demo: two worker processes each own
        half of a six-service social ecosystem; write messages bound
        for remote queues are forwarded through the broker seam, and
        every audit/repair rides control-plane envelopes over pipes;
        exits 0 iff all audits are digest-equal and the cross-shard
        targeted repair verifies
    recover --demo [--operations N] [--timeout S]
        durability subsystem demo: two shards WAL every state
        transition, one is kill -9'd mid-traffic, and a restart over
        the same data directory restores it from snapshot + WAL
        replay; exits 0 iff the restored mesh ends audit-clean
    saga --demo [--sagas N] [--mode causal|global|weak] [--seed K]
        CDC saga scenario: order/payment/inventory sagas through both
        front-ends — ORM writes plus raw writes via the transactional
        outbox — with declined payments compensated by raw releases;
        proves the inventory balance invariant and digest-equal
        replicas, then injects a broker loss and heals it with
        targeted repair; exits 0 iff converged, balanced and healed
    repair --demo [--objects N] [--lose K]
        reproduce the §6.5 message-loss incident (lost write-messages
        wedging a causal subscriber), audit replica divergence with
        Merkle digests, and heal it with targeted repair — no queue
        decommission, no full re-bootstrap; exits 0 iff the replicas
        end digest-equal
    version
"""

from __future__ import annotations

import sys


def _metrics_command(with_trace: bool) -> int:
    """Drive one publisher write through the full pipeline and print the
    registry snapshot (and, with ``--trace``, the per-stage spans)."""
    from repro.core import Ecosystem
    from repro.databases.document import MongoLike
    from repro.databases.relational import PostgresLike
    from repro.orm import Field, Model
    from repro.runtime.tracing import format_trace

    eco = Ecosystem()
    if with_trace:
        eco.enable_tracing()
    pub = eco.service("pub", database=MongoLike("pub-db"))

    @pub.model(publish=["name"], name="User")
    class User(Model):
        name = Field(str)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(subscribe={"from": "pub", "fields": ["name"]}, name="User")
    class SubUser(Model):
        name = Field(str)

    with pub.controller():
        for i in range(5):
            User.create(name=f"user-{i}")
    sub.subscriber.drain()

    print("MetricsRegistry snapshot (pub -> sub, 5 writes)")
    for name, value in eco.metrics.snapshot().items():
        if isinstance(value, dict):
            rendered = (
                f"count={value['count']} mean={value['mean'] * 1000:.3f}ms "
                f"p99={value['p99'] * 1000:.3f}ms"
            )
        else:
            rendered = str(value)
        print(f"  {name:<36} {rendered}")
    if with_trace:
        trace = eco.tracer.last()
        print()
        if trace is None:
            print("no finished traces recorded")
            return 1
        for line in format_trace(trace):
            print(line)
    return 0


def _repair_demo(objects: int, lose: int) -> int:
    """§6.5 in miniature: lose write-messages under causal delivery,
    watch the subscriber wedge, then audit + targeted-repair it back to
    digest-equality without decommissioning anything."""
    from repro.core import Ecosystem
    from repro.databases.document import MongoLike
    from repro.databases.relational import PostgresLike
    from repro.orm import Field, Model

    eco = Ecosystem()
    pub = eco.service("pub", database=MongoLike("pub-db"))

    @pub.model(publish=["name", "score"], name="User")
    class User(Model):
        name = Field(str)
        score = Field(int, default=0)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(subscribe={"from": "pub", "fields": ["name", "score"]}, name="User")
    class SubUser(Model):
        name = Field(str)
        score = Field(int, default=0)

    users = []
    with pub.controller():
        for i in range(objects):
            users.append(User.create(name=f"user-{i}", score=i))
    sub.subscriber.drain()
    print(f"replicated {objects} objects; injecting loss of {lose} messages...")

    eco.broker.drop_next(lose)
    with pub.controller():
        for user in users[:lose]:
            user.score += 1000
            user.save()
    # Follow-up writes to the same objects: their messages depend on the
    # lost increments and wedge the causal queue (§6.5 deadlock).
    with pub.controller():
        for user in users[:lose]:
            user.score += 1000
            user.save()
    sub.subscriber.drain()

    report = sub.audit_replication()
    for line in report.summary_lines():
        print(line)
    if report.in_sync:
        print("nothing to repair — loss injection did not diverge replicas")
        return 1

    print()
    result = sub.repair_replication(report=report)
    for line in result.summary_lines():
        print(line)

    print()
    snapshot = eco.metrics.snapshot()
    print("repair.* metrics:")
    for name, value in snapshot.items():
        if name.startswith("repair."):
            rendered = (
                f"count={value['count']} mean={value['mean'] * 1000:.3f}ms"
                if isinstance(value, dict) else str(value)
            )
            print(f"  {name:<40} {rendered}")
    stats = eco.broker.queue_stats("sub")["sub"]
    print(
        f"queue after repair: queued={stats['queued']} "
        f"in_flight={stats['in_flight']} decommissioned={stats['decommissioned']}"
    )
    if not result.verified_in_sync:
        print("FAILED: replicas still divergent after repair")
        return 1
    if stats["decommissioned"]:
        print("FAILED: repair should never decommission the queue")
        return 1
    print("OK: replicas digest-equal, queue intact")
    return 0


def main(argv: list) -> int:
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    command, args = argv[0], argv[1:]
    if command == "version":
        import repro

        print(repro.__version__)
        return 0
    if command == "demo":
        scenarios = {
            "quickstart": "examples.quickstart",
            "social": "examples.social_ecosystem",
            "crowdtap": "examples.crowdtap_microservices",
            "migration": "examples.live_migration",
            "analytics": "examples.analytics_pipeline",
            "fig8": "examples.fig8_walkthrough",
        }
        name = args[0] if args else "quickstart"
        module_name = scenarios.get(name)
        if module_name is None:
            print(f"unknown demo {name!r}; options: {sorted(scenarios)}")
            return 1
        # Examples live next to the repo root, not inside the package.
        import importlib
        import os

        repo_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        sys.path.insert(0, repo_root)
        try:
            module = importlib.import_module(module_name)
        except ModuleNotFoundError:
            print("examples/ not found — run from a source checkout")
            return 1
        module.main()
        return 0
    if command == "metrics":
        return _metrics_command("--trace" in args)
    if command == "watch":
        from repro.runtime.monitor.watch import watch_command

        return watch_command(args)
    if command == "trace":
        from repro.runtime.transport.demo import trace_command

        return trace_command(args)
    if command == "conformance":
        from repro.runtime.conformance.cli import conformance_command

        return conformance_command(args)
    if command == "flow":
        from repro.runtime.flow.demo import flow_command

        return flow_command(args)
    if command == "views":
        from repro.views.demo import views_command

        return views_command(args)
    if command == "shard":
        from repro.runtime.transport.demo import shard_command

        return shard_command(args)
    if command == "recover":
        from repro.durability.demo import recover_command

        return recover_command(args)
    if command == "saga":
        from repro.cdc.demo import saga_command

        return saga_command(args)
    if command == "repair":
        def _flag(name: str, default: int) -> int:
            if name in args:
                return int(args[args.index(name) + 1])
            return default

        if "--demo" not in args:
            print("the repair command currently only supports --demo")
            return 1
        return _repair_demo(
            objects=_flag("--objects", 40), lose=_flag("--lose", 3)
        )
    if command == "topology":
        from repro.core.tools import describe_ecosystem, to_dot

        which = args[0] if args else "social"
        if which == "crowdtap":
            from repro.apps.crowdtap import build_crowdtap_ecosystem

            eco = build_crowdtap_ecosystem().eco
        else:
            from repro.apps import build_social_ecosystem

            eco = build_social_ecosystem().eco
        if "--dot" in args:
            print(to_dot(eco))
        else:
            print(describe_ecosystem(eco))
        return 0
    print(f"unknown command {command!r}")
    print(__doc__)
    return 1


if __name__ == "__main__":  # pragma: no cover - thin shim
    raise SystemExit(main(sys.argv[1:]))
