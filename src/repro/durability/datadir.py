"""One configurable on-disk home for everything the runtime persists.

Layout under the resolved data dir::

    <data_dir>/
        wal/         append-only WAL segments (wal-NNNNNNNN.jsonl)
        snapshots/   snapshot files (snap-NNNNNNNN.json)
        flight/      FlightRecorder anomaly dumps (flight-NNNN-*.jsonl)

Sharded runs nest one such tree per worker under
``<data_dir>/<shard_name>/`` — each shard recovers independently from
its own log, mirroring per-service independent persistence.

Resolution order: an explicit ``data_dir=`` argument, then the
``REPRO_DATA_DIR`` environment variable, then ``./repro-data``.
"""

from __future__ import annotations

import os
from typing import Optional

DATA_DIR_ENV = "REPRO_DATA_DIR"
DEFAULT_DATA_DIR = "repro-data"

WAL_SUBDIR = "wal"
SNAPSHOT_SUBDIR = "snapshots"
FLIGHT_SUBDIR = "flight"


def resolve_data_dir(explicit: Optional[str] = None) -> str:
    """Pick the runtime data dir: explicit > $REPRO_DATA_DIR > default."""
    if explicit:
        return explicit
    return os.environ.get(DATA_DIR_ENV) or DEFAULT_DATA_DIR


def wal_dir(data_dir: str) -> str:
    return os.path.join(data_dir, WAL_SUBDIR)


def snapshot_dir(data_dir: str) -> str:
    return os.path.join(data_dir, SNAPSHOT_SUBDIR)


def flight_dir(data_dir: str) -> str:
    return os.path.join(data_dir, FLIGHT_SUBDIR)
