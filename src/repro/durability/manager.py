"""The durability manager: WAL logging hooks, snapshots, and restore.

``Ecosystem.enable_durability`` builds one :class:`DurabilityManager`
per process and attaches it to the broker (which hands it to every
subscriber queue, existing and future). The pipeline then logs each
durable state transition as one WAL record, appended *inside* the lock
that orders the transition, so WAL order equals effect order:

=========  =============================================================
``out``    publisher routed a message (captures the post-bump publisher
           version-store counters for the message's dependency keys)
``pub``    a queue admitted a message (payload, trace dropped)
``coal``   flow control merged a publish into a queued survivor
           (post-merge survivor payload — idempotent replace)
``shed``   flow control shed a weak publish (post-state deficit ledger)
``defer``  a worker rotated a dependency-stalled delivery to the back
``ack``    a delivery completed
``decom``  the queue hit its §4.4 kill cliff / ``recom`` recommission
``apply``  a subscriber finished applying a message
``gen``    subscriber flushed counters for a publisher generation bump
``pubgen`` publisher generation bump (version-store death, §4.4)
``obx``    a raw write committed a transactional-outbox entry (engines
           are in-memory: without this a crash before the CDC poll
           would lose the raw write entirely)
``cdc``    CDC poller cursor checkpoint (end of each poll batch); the
           ``out`` record of every CDC publish also piggybacks the
           cursor as ``cur``, making cursor-advance atomic with the
           publisher-counter capture
=========  =============================================================

:meth:`restore` is ARIES-lite: load the latest valid snapshot, replay
the WAL tail past its pin with at-least-once dedup (the snapshot's
applied-uid window plus in-replay queue membership), re-inject the
surviving pending messages into the real queues, and advance the
process-wide message sequence past every restored uid so new publishes
cannot collide into the dedup window. Replay applies operations at the
raw engine level — no callbacks, no publisher interception — because
every cascade a callback produced in the original run is already in the
log as its own records; re-firing it would double-publish.

If the log is unrecoverable (mid-log corruption, missing segment, newer
wire version) restore keeps the snapshot state, reports
``unrecoverable=True`` and the caller re-enters bootstrap/repair — the
pre-durability recovery ladder (docs/recovery.md).
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.broker.message import Message
from repro.core.delivery import WEAK
from repro.durability.datadir import snapshot_dir, wal_dir
from repro.durability.snapshot import SnapshotStore
from repro.durability.wal import (
    FSYNC_OFF,
    DEFAULT_GROUP_MAX,
    DEFAULT_SEGMENT_RECORDS,
    SegmentedWAL,
)
from repro.errors import WALCorrupt


def wire_payload(message: Message) -> Dict[str, Any]:
    """A message's wire payload as a dict, trace dropped (traces are
    runtime observability state, not durable data)."""
    data = json.loads(message.to_json())
    data.pop("trace", None)
    return data


def _uid_seq(uid: str) -> Optional[int]:
    """The numeric tail of a default ``app:seq`` uid, else None."""
    _, _, tail = uid.rpartition(":")
    return int(tail) if tail.isdigit() else None


@dataclass
class RestoreReport:
    """What :meth:`DurabilityManager.restore` did."""

    snapshot_id: Optional[int] = None
    replayed: int = 0
    requeued: int = 0
    applied: int = 0
    position: Optional[Tuple[int, int]] = None
    #: The WAL could not be trusted past ``position``; snapshot state
    #: was kept and the caller should re-enter bootstrap/repair.
    unrecoverable: bool = False
    error: str = ""
    #: Services whose queues/state may be behind after an unrecoverable
    #: log — the bootstrap/repair worklist.
    stale_services: List[str] = field(default_factory=list)


class DurabilityManager:
    """Per-process durability: one WAL + snapshot store for the
    ecosystem's local queues, version stores and engine rows."""

    def __init__(
        self,
        ecosystem: Any,
        data_dir: str,
        fsync: str = FSYNC_OFF,
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
        group_max: int = DEFAULT_GROUP_MAX,
        snapshot_every: Optional[int] = None,
    ) -> None:
        self.ecosystem = ecosystem
        self.data_dir = data_dir
        os.makedirs(data_dir, exist_ok=True)
        recorder = getattr(ecosystem, "recorder", None)
        self.wal = SegmentedWAL(
            wal_dir(data_dir),
            fsync=fsync,
            segment_records=segment_records,
            group_max=group_max,
            metrics=ecosystem.metrics,
            recorder=recorder,
        )
        self.snapshots = SnapshotStore(snapshot_dir(data_dir), recorder=recorder)
        #: Auto-snapshot cadence in WAL appends; None = explicit only.
        self.snapshot_every = snapshot_every
        self._appends_since_snapshot = 0
        #: True while :meth:`restore` runs: every log hook is a no-op so
        #: replayed effects are not re-logged.
        self._restoring = False
        #: Restored CDC poller cursors (service -> outbox seq), built
        #: set-to-max from snapshot + ``cdc``/``out`` records and pushed
        #: into the live pollers at the end of :meth:`restore`.
        self.cdc_cursors: Dict[str, int] = {}
        metrics = ecosystem.metrics
        self._snap_count = metrics.counter("durability.snapshot.count")
        self._replayed = metrics.counter("durability.restore.replayed")
        self._requeued = metrics.counter("durability.restore.requeued")
        self._restored_applies = metrics.counter("durability.restore.applied")
        self._unrecoverable = metrics.counter("durability.unrecoverable")

    # -- logging hooks (called by queue/broker/subscriber, see module doc) --

    @property
    def restoring(self) -> bool:
        return self._restoring

    def _append(self, rec: Dict[str, Any]) -> None:
        self.wal.append(rec)
        self._appends_since_snapshot += 1

    def log_out(self, message: Message) -> None:
        """Publisher routed a message: record the payload plus the
        post-bump publisher version-store counters of its dependency
        keys, so replay restores both the outbound intent and the
        counter state new publishes will continue from."""
        if self._restoring:
            return
        service = self.ecosystem.local_service(message.app)
        if service is None:
            return
        pvs = service.publisher_version_store
        counters: Dict[str, List[int]] = {}
        for hashed in message.dependencies:
            key = pvs._key(hashed)
            counters[hashed] = [
                pvs.kv.hget(key, "ops") or 0,
                pvs.kv.hget(key, "version") or 0,
            ]
        rec = {"t": "out", "app": message.app, "m": wire_payload(message),
               "vs": counters}
        if message.cdc is not None:
            # Piggybacked cursor: advancing past this outbox entry is
            # atomic with capturing the counters its publish bumped —
            # a crash can never leave the counters durable but the
            # cursor behind (which would republish and double-bump).
            rec["cur"] = message.cdc
        self._append(rec)
        self.maybe_snapshot()

    def log_pub(self, queue_name: str, message: Message) -> None:
        if self._restoring:
            return
        self._append(
            {"t": "pub", "q": queue_name, "m": wire_payload(message)}
        )

    def log_coal(self, queue_name: str, survivor: Message) -> None:
        if self._restoring:
            return
        # ``absorbed`` lists every uid the survivor has merged so far.
        # Replay must drop those from pending: an absorbed message whose
        # ``pub`` record is also in the log would otherwise be
        # re-injected on every restore, carrying dependency increments
        # the survivor already merged (dep-wait wedges or double-applied
        # counter bumps under causal/global delivery).
        self._append(
            {"t": "coal", "q": queue_name, "uid": survivor.uid,
             "m": wire_payload(survivor),
             "absorbed": list(survivor.coalesced_uids)}
        )

    def log_shed(self, queue_name: str, message: Message, flow: Any) -> None:
        """Post-state of the shed-deficit ledger for the message's app —
        an idempotent replace on replay.

        The append happens *inside* ``flow._shed_lock``: snapshotting
        the ledger under the lock but appending after releasing it lets
        a concurrent ledger writer (another shed, or an audit thread's
        ``reconcile_shed`` trim) slip its own record in between, so two
        records land in inverted order and last-writer-wins replay
        restores the stale ledger. Holding the lock across the append
        makes WAL order equal ledger-mutation order."""
        if self._restoring:
            return
        if flow is None:
            self._append(
                {"t": "shed", "q": queue_name, "app": message.app,
                 "ledger": {}}
            )
            return
        with flow._shed_lock:
            ledger = dict(flow._shed_deficits.get(message.app, {}))
            self._append(
                {"t": "shed", "q": queue_name, "app": message.app,
                 "ledger": ledger}
            )

    def log_defer(self, queue_name: str, message: Message) -> None:
        """A worker rotated a dependency-stalled delivery to the back of
        the queue. Without this record restore rebuilds the queue in
        original publish order, resurrecting the exact chain-head-buried
        ordering the rotation had already fixed — the restored workers
        would have to rediscover every defer before draining."""
        if self._restoring:
            return
        self._append({"t": "defer", "q": queue_name, "uid": message.uid})

    def log_ack(self, queue_name: str, message: Message) -> None:
        if self._restoring:
            return
        if self.wal.injector is not None:
            self.wal.injector.fire("before-ack")
        self._append({"t": "ack", "q": queue_name, "uid": message.uid})

    def log_decom(self, queue_name: str) -> None:
        if self._restoring:
            return
        self._append({"t": "decom", "q": queue_name})

    def log_recom(self, queue_name: str) -> None:
        if self._restoring:
            return
        self._append({"t": "recom", "q": queue_name})

    def log_apply(self, service_name: str, message: Message) -> None:
        if self._restoring:
            return
        self._append(
            {"t": "apply", "svc": service_name, "uid": message.uid,
             "m": wire_payload(message)}
        )

    def log_gen(self, service_name: str, app: str, generation: int) -> None:
        if self._restoring:
            return
        self._append(
            {"t": "gen", "svc": service_name, "app": app, "g": generation}
        )

    def log_pubgen(self, app: str, generation: int) -> None:
        if self._restoring:
            return
        self._append({"t": "pubgen", "app": app, "g": generation})

    def log_outbox(self, service_name: str, entry: Dict[str, Any]) -> None:
        """A raw write committed its data row + outbox entry. The entry
        carries everything replay needs to restore both."""
        if self._restoring:
            return
        self._append({"t": "obx", "svc": service_name, "e": dict(entry)})

    def log_cdc_cursor(self, service_name: str, cursor: int) -> None:
        """CDC poller batch checkpoint — keeps an idle tail's position
        durable across compaction even when no piggybacked ``out``
        record follows."""
        if self._restoring:
            return
        self._append({"t": "cdc", "svc": service_name, "cur": cursor})

    # -- snapshot ------------------------------------------------------------

    def maybe_snapshot(self) -> Optional[int]:
        """Take a snapshot when the cadence is due. Only called from
        lock-free sites (the publisher path): capturing queue state
        takes each queue's lock, so a snapshot from inside one would
        deadlock."""
        if self.snapshot_every is None:
            return None
        if self._appends_since_snapshot < self.snapshot_every:
            return None
        return self.snapshot()

    def snapshot(self, pin: Optional[Tuple[int, int]] = None) -> int:
        """Checkpoint the process's durable state and compact the log.

        The WAL is synced and the pin taken *before* state capture, so
        records racing the capture appear both in the snapshot and the
        tail — replay dedup makes the overlap idempotent. ``pin``
        overrides the position (tests replaying a bounded prefix)."""
        self.wal.sync()
        if pin is None:
            pin = self.wal.position()
        state = self._capture_state()
        snapshot_id, _ = self.snapshots.write(state, pin)
        self.snapshots.compact(snapshot_id)
        self.wal.compact_below(pin[0])
        self._appends_since_snapshot = 0
        self._snap_count.increment()
        return snapshot_id

    def _local_queues(self) -> List[Any]:
        broker = self.ecosystem.broker
        placement = getattr(broker, "_placement", None)
        queues = list(broker._queues.values())
        if placement is None:
            return queues
        is_local, _ = placement
        return [queue for queue in queues if is_local(queue.name)]

    def _capture_state(self) -> Dict[str, Any]:
        eco = self.ecosystem
        state: Dict[str, Any] = {
            "generations": eco.generations.snapshot(),
            "services": {},
            "queues": {},
        }
        for service in eco.local_services():
            sub = service.subscriber
            pvs_state: Dict[str, List[int]] = {}
            for key, fields in service.publisher_version_store.kv.entries(
                "v:"
            ).items():
                pvs_state[key[len("v:"):]] = [
                    fields.get("ops", 0), fields.get("version", 0)
                ]
            models: Dict[str, List[Dict[str, Any]]] = {}
            for model_name, model_cls in sorted(service.registry.items()):
                mapper = model_cls.__mapper__
                if mapper is None or mapper.db is None:
                    continue  # ephemerals/observers persist nothing
                models[model_name] = mapper._do_where({}, None, None)
            with sub._applied_lock:
                applied = list(sub._applied_uids)
            state["services"][service.name] = {
                "pvs": pvs_state,
                "svs": service.subscriber_version_store.snapshot(),
                "sub_generations": dict(sub.generations),
                "applied_uids": applied,
                "bootstrapping": sub.bootstrapping,
                "models": models,
            }
        for queue in self._local_queues():
            durable = queue.durable_state()
            flow = queue.flow
            durable["shed"] = flow.shed_ledger() if flow is not None else {}
            state["queues"][queue.name] = durable
        cdc = getattr(eco, "cdc", None)
        if cdc is not None:
            state["cdc"] = cdc.cursors()
        return state

    # -- restore -------------------------------------------------------------

    def restore(self, replay_limit: Optional[int] = None) -> RestoreReport:
        """Rebuild the process's durable state: latest valid snapshot,
        then the WAL tail. ``replay_limit`` bounds replay to the first
        N tail records (crash-point tests replaying every prefix)."""
        report = RestoreReport()
        self._restoring = True
        self.cdc_cursors = {}
        try:
            snapshot = self.snapshots.load_latest()
            start = None
            #: queue -> uid -> payload dict, in queue order.
            pending: Dict[str, Dict[str, Any]] = {}
            stats: Dict[str, Dict[str, int]] = {}
            decommissioned: Dict[str, bool] = {}
            shed: Dict[str, Dict[str, Dict[str, int]]] = {}
            max_seq = 0
            if snapshot is not None:
                manifest = snapshot["manifest"]
                report.snapshot_id = manifest["id"]
                start = (manifest["wal"]["segment"], manifest["wal"]["offset"])
                max_seq = self._restore_snapshot_state(
                    snapshot, pending, stats, decommissioned, shed
                )
            replay_error: Optional[WALCorrupt] = None
            replayed = 0
            try:
                for position, rec in self.wal.replay(start=start):
                    if replay_limit is not None and replayed >= replay_limit:
                        report.position = position
                        break
                    replayed += 1
                    max_seq = max(
                        max_seq,
                        self._replay_record(
                            rec, pending, stats, decommissioned, shed, report
                        ),
                    )
                    report.position = (position[0], position[1] + 1)
            except WALCorrupt as exc:
                replay_error = exc
            report.replayed = replayed
            self._replayed.increment(replayed)
            # Re-inject survivors into the real queues (bypassing
            # publish: flow admission must not re-shed differently than
            # the run being restored did).
            broker = self.ecosystem.broker
            for queue_name, entries in pending.items():
                queue = broker.queue_for(queue_name)
                messages = []
                for payload in entries.values():
                    message = Message.from_json(json.dumps(payload))
                    seq = _uid_seq(message.uid)
                    if seq is not None:
                        max_seq = max(max_seq, seq)
                    messages.append(message)
                queue_stats = stats.get(queue_name, {})
                queue.restore_state(
                    messages,
                    published=queue_stats.get("published", 0),
                    acked=queue_stats.get("acked", 0),
                    decommissioned=decommissioned.get(queue_name, False),
                )
                if queue.flow is not None and queue_name in shed:
                    queue.flow.restore_shed(shed[queue_name])
                report.requeued += len(messages)
            for queue_name, dead in decommissioned.items():
                if dead and queue_name not in pending:
                    broker.queue_for(queue_name).restore_state(
                        [], published=stats.get(queue_name, {}).get("published", 0),
                        acked=stats.get(queue_name, {}).get("acked", 0),
                        decommissioned=True,
                    )
            self._requeued.increment(report.requeued)
            self._restored_applies.increment(report.applied)
            _advance_message_seq(max_seq)
            # Derived read models are not snapshotted: WAL replay lands
            # raw engine writes without the subscriber's view hook, so
            # any service with declared views rebuilds them from the
            # restored base rows (deterministic, and self-auditing
            # against INV_VIEW).
            for service in self.ecosystem.local_services():
                views = getattr(service, "views", None)
                if views is not None:
                    views.rebuild()
            # CDC pollers resume from the restored cursors, and each
            # outbox re-derives its next sequence from the restored
            # rows so new raw writes cannot collide with replayed ones.
            cdc = getattr(self.ecosystem, "cdc", None)
            if cdc is not None:
                cdc.adopt_cursors(self.cdc_cursors)
                cdc.resync()
            if replay_error is not None:
                report.unrecoverable = True
                report.error = str(replay_error)
                report.stale_services = sorted(
                    service.name for service in self.ecosystem.local_services()
                )
                self._unrecoverable.increment()
                recorder = getattr(self.ecosystem, "recorder", None)
                if recorder is not None:
                    recorder.anomaly(
                        "durability.unrecoverable", error=str(replay_error)
                    )
        finally:
            self._restoring = False
        return report

    def _restore_snapshot_state(
        self,
        snapshot: Dict[str, Any],
        pending: Dict[str, Dict[str, Any]],
        stats: Dict[str, Dict[str, int]],
        decommissioned: Dict[str, bool],
        shed: Dict[str, Dict[str, Dict[str, int]]],
    ) -> int:
        eco = self.ecosystem
        max_seq = 0
        eco.generations.restore_all(snapshot.get("generations", {}))
        for name, svc_state in snapshot.get("services", {}).items():
            service = eco.local_service(name)
            if service is None:
                continue
            pvs = service.publisher_version_store
            for hashed, (ops, version) in svc_state.get("pvs", {}).items():
                _pvs_fast_forward(pvs, hashed, ops, version)
            service.subscriber_version_store.bulk_load(
                svc_state.get("svs", {})
            )
            sub = service.subscriber
            for app, generation in svc_state.get(
                "sub_generations", {}
            ).items():
                if generation > sub.generations.get(app, 1):
                    sub.generations[app] = generation
            for uid in svc_state.get("applied_uids", []):
                sub._mark_applied(uid)
                seq = _uid_seq(uid)
                if seq is not None:
                    max_seq = max(max_seq, seq)
            sub.bootstrapping = bool(svc_state.get("bootstrapping", False))
            self._restore_rows(service, svc_state.get("models", {}))
        for queue_name, queue_state in snapshot.get("queues", {}).items():
            entries = pending.setdefault(queue_name, {})
            for payload in queue_state.get("pending", []):
                entries[payload["uid"]] = payload
            stats[queue_name] = {
                "published": queue_state.get("published", 0),
                "acked": queue_state.get("acked", 0),
            }
            decommissioned[queue_name] = bool(
                queue_state.get("decommissioned", False)
            )
            if queue_state.get("shed"):
                shed[queue_name] = {
                    app: dict(ledger)
                    for app, ledger in queue_state["shed"].items()
                }
        for svc_name, cursor in snapshot.get("cdc", {}).items():
            self._advance_cdc_cursor(svc_name, cursor)
        return max_seq

    def _restore_rows(
        self, service: Any, models: Dict[str, List[Dict[str, Any]]]
    ) -> None:
        """Make each model's engine rows exactly match the snapshot:
        raw mapper writes — no callbacks, no interception, no
        read-dependency tracking (mirroring the digest builder's raw
        reads)."""
        for model_name, rows in models.items():
            model_cls = service.registry.get(model_name)
            if model_cls is None:
                continue
            mapper = model_cls.__mapper__
            if mapper is None or mapper.db is None:
                continue
            want = {row["id"]: row for row in rows}
            for local_row in mapper._do_where({}, None, None):
                if local_row["id"] not in want:
                    mapper._do_delete(local_row["id"])
            for row_id, row in want.items():
                _raw_upsert(mapper, model_cls, row_id, row)

    # -- tail replay ---------------------------------------------------------

    def _replay_record(
        self,
        rec: Dict[str, Any],
        pending: Dict[str, Dict[str, Any]],
        stats: Dict[str, Dict[str, int]],
        decommissioned: Dict[str, bool],
        shed: Dict[str, Dict[str, Dict[str, int]]],
        report: RestoreReport,
    ) -> int:
        eco = self.ecosystem
        kind = rec.get("t")
        max_seq = 0
        if kind == "pub":
            payload = rec["m"]
            uid = payload["uid"]
            seq = _uid_seq(uid)
            if seq is not None:
                max_seq = seq
            queue_name = rec["q"]
            entries = pending.setdefault(queue_name, {})
            if uid not in entries and not self._uid_applied(queue_name, uid):
                entries[uid] = payload
                counters = stats.setdefault(
                    queue_name, {"published": 0, "acked": 0}
                )
                counters["published"] = counters.get("published", 0) + 1
        elif kind == "coal":
            entries = pending.get(rec["q"], {})
            if rec["uid"] in entries:
                entries[rec["uid"]] = rec["m"]
            # Absorbed messages ride inside the survivor now; any of
            # them still pending (its own ``pub`` record replayed
            # earlier) would be re-injected as a duplicate carrying
            # increments the survivor already merged.
            for absorbed_uid in rec.get("absorbed", []):
                if absorbed_uid == rec["uid"]:
                    continue
                if entries.pop(absorbed_uid, None) is not None:
                    counters = stats.setdefault(
                        rec["q"], {"published": 0, "acked": 0}
                    )
                    counters["published"] = max(
                        0, counters.get("published", 0) - 1
                    )
        elif kind == "defer":
            entries = pending.get(rec["q"], {})
            payload = entries.pop(rec["uid"], None)
            if payload is not None:
                # Rotate to the back: pending dicts are insertion-
                # ordered, and re-injection follows that order.
                entries[rec["uid"]] = payload
        elif kind == "shed":
            shed.setdefault(rec["q"], {})[rec["app"]] = dict(rec["ledger"])
        elif kind == "ack":
            entries = pending.get(rec["q"], {})
            if entries.pop(rec["uid"], None) is not None:
                counters = stats.setdefault(
                    rec["q"], {"published": 0, "acked": 0}
                )
                counters["acked"] = counters.get("acked", 0) + 1
        elif kind == "decom":
            decommissioned[rec["q"]] = True
            pending.pop(rec["q"], None)
            shed.pop(rec["q"], None)
        elif kind == "recom":
            decommissioned[rec["q"]] = False
            pending.pop(rec["q"], None)
            shed.pop(rec["q"], None)
        elif kind == "apply":
            message = Message.from_json(json.dumps(rec["m"]))
            seq = _uid_seq(message.uid)
            if seq is not None:
                max_seq = seq
            service = eco.local_service(rec["svc"])
            if service is not None and not service.subscriber._already_applied(
                message.uid
            ):
                self._replay_apply(service, message)
                report.applied += 1
        elif kind == "gen":
            service = eco.local_service(rec["svc"])
            if service is not None:
                sub = service.subscriber
                if rec["g"] > sub.generations.get(rec["app"], 1):
                    sub._flush_app_dependencies(rec["app"])
                    sub.generations[rec["app"]] = rec["g"]
        elif kind == "pubgen":
            service = eco.local_service(rec["app"])
            if service is not None and rec["g"] > eco.generations.current(
                rec["app"]
            ):
                service.publisher_version_store.kv.flushall()
            eco.generations.restore_all({rec["app"]: rec["g"]})
        elif kind == "out":
            service = eco.local_service(rec["app"])
            if service is not None:
                message = Message.from_json(json.dumps(rec["m"]))
                seq = _uid_seq(message.uid)
                if seq is not None:
                    max_seq = seq
                pvs = service.publisher_version_store
                for hashed, (ops, version) in rec.get("vs", {}).items():
                    _pvs_fast_forward(pvs, hashed, ops, version)
                if message.cdc is None:
                    # CDC messages restore publisher rows from their obx
                    # records, which sit at *commit* position in the WAL.
                    # The out record is appended at poll time, so its row
                    # attributes can be stale by then (a later raw update
                    # committed between the write and the poll) — replaying
                    # them here would clobber the newer obx-replayed state.
                    self._replay_publisher_rows(service, message)
                if rec.get("cur") is not None:
                    self._advance_cdc_cursor(rec["app"], rec["cur"])
        elif kind == "obx":
            service = eco.local_service(rec["svc"])
            if service is not None:
                self._replay_outbox(service, rec["e"])
        elif kind == "cdc":
            self._advance_cdc_cursor(rec["svc"], rec["cur"])
        return max_seq

    def _advance_cdc_cursor(self, service_name: str, cursor: int) -> None:
        """Set-to-max: a replayed piggyback may trail a later checkpoint
        (or the snapshot's captured cursor)."""
        self.cdc_cursors[service_name] = max(
            self.cdc_cursors.get(service_name, 0), int(cursor)
        )

    def _replay_outbox(self, service: Any, entry: Dict[str, Any]) -> None:
        """Replay one ``obx`` record: restore the raw-written data row
        and the outbox row itself (dedup by ``id == seq`` — snapshots
        may already carry both)."""
        from repro.cdc.outbox import OUTBOX_MODEL_NAME, entry_row

        model_cls = service.registry.get(entry.get("model", ""))
        if model_cls is not None:
            mapper = model_cls.__mapper__
            if mapper is not None and mapper.db is not None:
                if entry["kind"] == "delete":
                    if mapper._do_find(entry["row_id"]) is not None:
                        mapper._do_delete(entry["row_id"])
                else:
                    row = entry_row(entry)
                    _raw_upsert(mapper, model_cls, entry["row_id"], row)
        outbox_cls = service.registry.get(OUTBOX_MODEL_NAME)
        if outbox_cls is not None:
            outbox_mapper = outbox_cls.__mapper__
            if (
                outbox_mapper is not None
                and outbox_mapper.db is not None
                and outbox_mapper._do_find(entry["id"]) is None
            ):
                outbox_mapper._do_insert(dict(entry))

    def _uid_applied(self, queue_name: str, uid: str) -> bool:
        """Was this uid already applied by the queue's subscriber? The
        at-least-once dedup for replayed ``pub`` records."""
        service = self.ecosystem.local_service(queue_name)
        if service is None:
            return False
        return service.subscriber._already_applied(uid)

    def _replay_apply(self, service: Any, message: Message) -> None:
        """Re-run one subscriber apply from its log record, mirroring
        ``SynapseSubscriber._process`` minus gating — raw engine writes
        plus the exact counter arithmetic of each delivery class."""
        sub = service.subscriber
        store = service.subscriber_version_store
        object_deps = sub._object_deps(message)
        if message.repair:
            for hashed, operation in object_deps.items():
                version = message.dependencies.get(hashed, 0)
                if not store.is_stale(hashed, version):
                    self._raw_apply_operation(service, message.app, operation)
                store.fast_forward(hashed, version)
        else:
            # Bootstrap-forced-weak applies (mode != WEAK) bump exactly
            # like the ordered path, so only true weak mode differs.
            mode = sub.app_modes.get(message.app, WEAK)
            if mode == WEAK:
                increments = message.counter_increments()
                for hashed, operation in object_deps.items():
                    version = message.dependencies.get(hashed, 0)
                    if store.is_stale(hashed, version):
                        continue
                    self._raw_apply_operation(service, message.app, operation)
                    store.fast_forward(
                        hashed,
                        version + max(0, increments.get(hashed, 1) - 1),
                    )
            else:
                for operation in message.operations:
                    self._raw_apply_operation(service, message.app, operation)
                store.apply_counts(message.counter_increments())
        sub._mark_applied(message.uid)

    def _replay_publisher_rows(self, service: Any, message: Message) -> None:
        """Re-apply an ``out`` record's operations to the publisher's
        own rows (published attributes only — snapshots carry the full
        rows; the tail can only restore what rode the wire)."""
        for operation in message.operations:
            model_cls = None
            for type_name in operation["types"]:
                model_cls = service.registry.get(type_name)
                if model_cls is not None:
                    break
            if model_cls is None:
                continue
            mapper = model_cls.__mapper__
            if mapper is None or mapper.db is None:
                continue
            if operation["operation"] == "delete":
                if mapper._do_find(operation["id"]) is not None:
                    mapper._do_delete(operation["id"])
            else:
                row = dict(operation["attributes"])
                row["id"] = operation["id"]
                _raw_upsert(mapper, model_cls, operation["id"], row)

    def _raw_apply_operation(
        self, service: Any, app: str, operation: Dict[str, Any]
    ) -> None:
        """Subscriber-side raw apply: the engine effect of
        ``SynapseSubscriber._apply_operation`` without callbacks or
        interception (the cascades they'd fire are already separate log
        records)."""
        sub = service.subscriber
        spec = sub.spec_for(app, operation["types"])
        if spec is None or spec.observer:
            return
        mapper = spec.model_cls.__mapper__
        if mapper is None or mapper.db is None:
            return
        if operation["operation"] == "delete":
            if mapper._do_find(operation["id"]) is not None:
                mapper._do_delete(operation["id"])
            return
        attrs = {
            local: operation["attributes"][remote]
            for remote, local in spec.fields.items()
            if remote in operation["attributes"]
        }
        attrs["id"] = operation["id"]
        _raw_upsert(mapper, spec.model_cls, operation["id"], attrs)

    def close(self) -> None:
        self.wal.close()


def _pvs_fast_forward(pvs: Any, hashed: str, ops: int, version: int) -> None:
    """Set-to-max restore of one publisher counter pair (replays may
    revisit keys the snapshot already covered)."""
    key = pvs._key(hashed)

    def script(store, key=key, ops=ops, version=version):
        store.hset(key, "ops", max(store.hget(key, "ops") or 0, ops))
        store.hset(
            key, "version", max(store.hget(key, "version") or 0, version)
        )

    pvs.kv.eval_on(key, script)


def _raw_upsert(
    mapper: Any, model_cls: type, row_id: Any, row: Dict[str, Any]
) -> None:
    """Insert-or-overwrite one row at the storage layer. Inserts start
    from field defaults so a partially-published row still carries every
    column the live apply path would have initialised."""
    attrs = {k: v for k, v in row.items() if k != "id"}
    if mapper._do_find(row_id) is None:
        full = {
            name: field.default_value()
            for name, field in model_cls._fields.items()
        }
        full.update(attrs)
        full["id"] = row_id
        mapper._do_insert(full)
    else:
        mapper._do_update(row_id, attrs)


def _advance_message_seq(max_seq: int) -> None:
    """Move the process-wide message sequence past every restored uid:
    a fresh process restarts the counter at 1, and a new publish whose
    ``app:seq`` uid collides with a restored one would be silently
    dedup-skipped by the subscriber."""
    if max_seq <= 0:
        return
    import repro.broker.message as message_mod

    with message_mod._seq_lock:
        current = next(message_mod._seq)
        message_mod._seq = itertools.count(max(current, max_seq + 1))
