"""Kill-and-restart recovery demo (``python -m repro recover --demo``).

Two shards, each owning one publisher and the *other* shard's
subscriber, so every replication message crosses the process boundary:

- ``alpha`` owns ``pub0`` and ``sub1`` (subscriber of ``pub1``);
- ``beta``  owns ``pub1`` and ``sub0`` (subscriber of ``pub0``).

Phase A (crash): both shards run with durability enabled, WAL-ing to
``<data_dir>/<shard>/``. The survivor (``alpha``) publishes its workload
first — its forwarded messages land in the victim's subscriber queue and
its WAL. Then the victim (``beta``) publishes its own workload and
``kill -9``\\ s itself mid-traffic, before draining anything: its queue
backlog, publisher rows and version-store counters exist only in its
write-ahead log. The survivor checkpoints and exits cleanly.

Phase B (restart): a standard :class:`ShardRunner` starts fresh
processes over the *same* data directory. Each shard restores on
startup — the survivor from its snapshot, the victim by replaying its
WAL — then drains, audits every replica against the remote publisher's
Merkle digests over the control plane, heals any message that died
in a pipe with targeted repair (§6.5), and re-audits. The demo is
healthy iff the victim was really SIGKILLed, its restore replayed and
requeued work, and every final audit is digest-equal.

Everything is module-level so the process start methods can pickle the
callables by reference.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import tempfile
from typing import Any, Dict, Optional

from repro.errors import TransportError, TransportTimeout
from repro.runtime.transport.shard import ShardRunner, _shard_main

#: shard -> services. Subscribers live opposite their publisher, so both
#: the replication stream and the audit digests cross processes.
RECOVER_PLACEMENT = {
    "alpha": ["pub0", "sub1"],
    "beta": ["pub1", "sub0"],
}

#: The shard that gets SIGKILLed mid-traffic in phase A.
RECOVER_VICTIM = "beta"

RECOVER_PUBLISHER = {"alpha": "pub0", "beta": "pub1"}

#: Workload size / kill-switch knobs (environment so they reach the
#: worker processes across fork).
RECOVER_OPS_ENV = "REPRO_RECOVER_OPS"
RECOVER_KILL_ENV = "REPRO_RECOVER_KILL"


def build_recover_ecosystem() -> Any:
    """Two publisher/subscriber pairs; every shard rebuilds the full
    topology and narrows ownership (declarations are code)."""
    from repro.core import Ecosystem
    from repro.databases.document import MongoLike
    from repro.databases.relational import PostgresLike
    from repro.orm import Field, Model

    ecosystem = Ecosystem()
    for pub_name, sub_name in (("pub0", "sub0"), ("pub1", "sub1")):
        pub = ecosystem.service(
            pub_name, database=MongoLike(f"{pub_name}-db"),
            delivery_mode="causal",
        )

        @pub.model(publish=["name", "score"], name="Item")
        class Item(Model):
            name = Field(str)
            score = Field(int, default=0)

        sub = ecosystem.service(
            sub_name, database=PostgresLike(f"{sub_name}-db")
        )

        @sub.model(subscribe={"from": pub_name, "fields": ["name", "score"],
                              "mode": "causal"}, name="Item")
        class SubItem(Model):
            name = Field(str)
            score = Field(int, default=0)

    return ecosystem


def recover_scenario(ecosystem: Any, shard_name: str) -> Dict[str, Any]:
    """Publish this shard's workload; the designated victim then SIGKILLs
    itself mid-traffic, leaving its backlog only in the WAL."""
    operations = int(os.environ.get(RECOVER_OPS_ENV, "24"))
    pub_name = RECOVER_PUBLISHER[shard_name]
    service = ecosystem.local_service(pub_name)
    Item = service.registry["Item"]

    items = []
    with service.controller():
        for i in range(operations):
            items.append(Item.create(name=f"{pub_name}-item-{i}", score=i))
    # A causally-chained second wave: updates depend on the creates, so
    # a restore that loses ordering would wedge or misapply them.
    with service.controller():
        for item in items[: operations // 2]:
            item.score += 100
            item.save()

    if os.environ.get(RECOVER_KILL_ENV, "") == shard_name:
        # The point of the demo: a real, unhandled kill — no atexit, no
        # flush hooks, no goodbye to the parent. Everything this shard
        # still owes (its undrained subscriber queue, its publisher's
        # rows and counters) must come back from the WAL alone.
        os.kill(os.getpid(), signal.SIGKILL)

    return {
        "publisher": pub_name,
        "operations": operations,
        "published": service.publisher.messages_published,
    }


def recover_converge(ecosystem: Any, shard_name: str) -> Dict[str, Any]:
    """Phase B per-shard convergence: drain the restored backlog, audit
    against the remote publisher, and heal anything that died in a pipe
    with targeted repair (the §6.5 remedy) so the mesh can quiesce."""
    from repro.repair.repairer import repair_subscriber

    results: Dict[str, Any] = {}
    for service in ecosystem.local_services():
        if not service.subscriber.specs:
            continue
        service.subscriber.drain()
        report = service.audit_replication()
        repaired = 0
        if not report.in_sync:
            repaired = repair_subscriber(service).objects_repaired
        results[service.name] = {
            "in_sync_before_repair": report.in_sync,
            "objects_repaired": repaired,
        }
    return results


def recover_verify(ecosystem: Any, shard_name: str) -> Dict[str, Any]:
    """Final cross-process Merkle audit of every owned replica."""
    from repro.repair.auditor import ReplicationAuditor

    audits: Dict[str, Any] = {}
    for service in ecosystem.local_services():
        if not service.subscriber.specs:
            continue
        report = ReplicationAuditor(service).audit()
        audits[service.name] = {
            "in_sync": report.in_sync,
            "divergent": report.divergent_total,
            "rows": service.registry["Item"].count(),
        }
    return {"audits": audits}


# -- phase A: the crash run ----------------------------------------------------


def _recv(conn: Any, shard: str, expected: str, timeout: float) -> Any:
    if not conn.poll(timeout):
        raise TransportTimeout(
            f"shard {shard!r} sent no {expected!r} within {timeout:.0f}s"
        )
    try:
        frame = conn.recv()
    except EOFError as exc:
        raise TransportError(f"shard {shard!r} died") from exc
    if frame[0] == "error":
        raise TransportError(f"shard {shard!r} failed: {frame[1]}")
    if frame[0] != expected:
        raise TransportError(
            f"shard {shard!r} answered {frame[0]!r}, expected {expected!r}"
        )
    return frame[1] if len(frame) > 1 else None


def _run_crash_phase(
    data_dir: str, timeout: float
) -> Dict[str, Any]:
    """Drive :func:`_shard_main` workers through the crash: survivor's
    workload, victim's workload ending in SIGKILL, survivor checkpoint.

    This is :meth:`ShardRunner.run` minus the assumption that every
    shard answers: the victim's silence (EOF / exitcode ``-SIGKILL``)
    is the expected outcome, not a transport error."""
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        ctx = multiprocessing.get_context("spawn")
    shards = sorted(RECOVER_PLACEMENT)
    victim = RECOVER_VICTIM
    survivor = next(name for name in shards if name != victim)
    os.environ[RECOVER_KILL_ENV] = victim

    peer_conns: Dict[str, Dict[str, Any]] = {name: {} for name in shards}
    for i, a in enumerate(shards):
        for b in shards[i + 1:]:
            end_a, end_b = ctx.Pipe()
            peer_conns[a][b] = end_a
            peer_conns[b][a] = end_b
    command: Dict[str, Any] = {}
    processes: Dict[str, Any] = {}
    for name in shards:
        parent_end, child_end = ctx.Pipe()
        command[name] = parent_end
        processes[name] = ctx.Process(
            target=_shard_main,
            name=f"recover-{name}",
            args=(name, build_recover_ecosystem, RECOVER_PLACEMENT,
                  recover_scenario, None, child_end, peer_conns[name],
                  data_dir),
        )
    killed = False
    survivor_scenario: Dict[str, Any] = {}
    survivor_stats: Dict[str, Any] = {}
    try:
        for name in shards:
            processes[name].start()
        for name in shards:
            for conn in peer_conns[name].values():
                conn.close()
        for name in shards:
            _recv(command[name], name, "ready", timeout)
        # Survivor first: its forwarded messages reach the victim's
        # queue — and therefore the victim's WAL — while it still lives.
        command[survivor].send(("run",))
        survivor_scenario = _recv(
            command[survivor], survivor, "scenario_done", timeout
        )
        # The victim publishes its own workload and kills itself.
        command[victim].send(("run",))
        processes[victim].join(timeout=timeout)
        killed = processes[victim].exitcode == -signal.SIGKILL
        # Let the survivor's link thread finish consuming whatever the
        # victim managed to push into the pipe before dying: the shared
        # quiesce helper polls the cluster health_report from inside the
        # survivor, degrading to counter-stability for the dead peer.
        command[survivor].send(("quiesce", timeout))
        quiesced = _recv(
            command[survivor], survivor, "quiesced", timeout + 10.0
        )
        if not quiesced["quiesced"]:
            raise TransportTimeout(
                f"survivor {survivor!r} did not quiesce after the crash"
            )
        command[survivor].send(("finish",))
        survivor_stats = _recv(command[survivor], survivor, "result", timeout)
        processes[survivor].join(timeout=timeout)
    finally:
        os.environ.pop(RECOVER_KILL_ENV, None)
        for process in processes.values():
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        for conn in command.values():
            conn.close()
    return {
        "victim": victim,
        "killed": killed,
        "survivor": survivor,
        "survivor_scenario": survivor_scenario,
        "survivor_stats": survivor_stats,
    }


# -- the full demo -------------------------------------------------------------


def run_recover_demo(
    operations: int = 24,
    timeout: float = 60.0,
    data_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Phase A (crash) then phase B (restart over the same data dir)."""
    if data_dir is None:
        data_dir = tempfile.mkdtemp(prefix="repro-recover-")
    os.environ[RECOVER_OPS_ENV] = str(operations)
    crash = _run_crash_phase(data_dir, timeout)
    runner = ShardRunner(
        build_recover_ecosystem,
        RECOVER_PLACEMENT,
        scenario=recover_converge,
        verify=recover_verify,
        timeout=timeout,
        durability_dir=data_dir,
    )
    restart = runner.run()
    return {"data_dir": data_dir, "crash": crash, "restart": restart}


def recover_healthy(outcome: Dict[str, Any]) -> bool:
    """Did the demo demonstrate what it claims? The victim really died
    by SIGKILL, its restore replayed WAL records and requeued backlog,
    no restore was unrecoverable, and every final audit is in sync."""
    crash = outcome["crash"]
    if not crash.get("killed"):
        return False
    shards = outcome["restart"]["shards"]
    victim = crash["victim"]
    restored = (shards[victim]["stats"] or {}).get("restored") or {}
    if restored.get("unrecoverable", True):
        return False
    if not restored.get("replayed") or not restored.get("requeued"):
        return False
    for shard in shards.values():
        if (shard["stats"] or {}).get("restored", {}).get("unrecoverable"):
            return False
        for audit in (shard.get("verify") or {}).get("audits", {}).values():
            if not audit["in_sync"]:
                return False
    return True


def recover_command(args: Any) -> int:
    """``python -m repro recover --demo [--operations N] [--timeout S]``."""
    if "--demo" not in args:
        print("the recover command currently only supports --demo")
        return 1

    def _flag(name: str, default: float) -> float:
        if name in args:
            return float(args[args.index(name) + 1])
        return default

    operations = int(_flag("--operations", 24))
    timeout = _flag("--timeout", 60.0)
    print(
        f"phase A: 2 shards, durability on, {operations} writes per "
        f"publisher; SIGKILL {RECOVER_VICTIM!r} mid-traffic..."
    )
    outcome = run_recover_demo(operations=operations, timeout=timeout)
    crash = outcome["crash"]
    print(
        f"  victim {crash['victim']!r} killed: {crash['killed']} "
        f"(survivor {crash['survivor']!r} published "
        f"{crash['survivor_scenario'].get('published', 0)} messages, "
        "checkpointed, exited cleanly)"
    )
    print(f"phase B: restart both shards over {outcome['data_dir']} ...")
    shards = outcome["restart"]["shards"]
    for shard_name in sorted(shards):
        shard = shards[shard_name]
        restored = (shard["stats"] or {}).get("restored") or {}
        print(
            f"  {shard_name}: restored snapshot="
            f"{restored.get('snapshot_id')} "
            f"replayed={restored.get('replayed', 0)} WAL records, "
            f"requeued={restored.get('requeued', 0)} backlog messages, "
            f"re-applied={restored.get('applied', 0)}"
        )
        for name, state in sorted(shard["scenario"].items()):
            print(
                f"    {name}: in_sync_before_repair="
                f"{state['in_sync_before_repair']} "
                f"repaired={state['objects_repaired']}"
            )
        for name, audit in sorted(shard["verify"]["audits"].items()):
            state = "in sync" if audit["in_sync"] \
                else f"{audit['divergent']} divergent"
            print(f"    audit {name}: {state} (rows={audit['rows']})")
    print(
        f"  quiesced after {outcome['restart']['quiesce_polls']} polls in "
        f"{outcome['restart']['elapsed']:.2f}s"
    )
    if recover_healthy(outcome):
        print("OK: kill -9'd shard restored from WAL, all audits digest-equal")
        return 0
    print("FAILED: restore incomplete or replicas divergent — see above")
    return 1
