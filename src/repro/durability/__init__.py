"""Durability subsystem: segmented WAL, snapshots, kill-and-restart
recovery (docs/durability.md).

Off by default — an ecosystem without ``enable_durability`` runs the
exact pre-durability pipeline. Enabled, every durable state transition
(publish, coalesce, shed, ack, apply, generation bump) is logged to an
append-only segmented WAL, periodically checkpointed into a snapshot
that pins the WAL position it covers, and :meth:`DurabilityManager.
restore` rebuilds the process after a ``kill -9`` by replaying the tail
with at-least-once dedup.
"""

from repro.durability.datadir import (
    DATA_DIR_ENV,
    DEFAULT_DATA_DIR,
    flight_dir,
    resolve_data_dir,
    snapshot_dir,
    wal_dir,
)
from repro.durability.manager import (
    DurabilityManager,
    RestoreReport,
    wire_payload,
)
from repro.durability.snapshot import SNAPSHOT_VERSION, SnapshotStore, build_manifest
from repro.durability.wal import (
    FSYNC_ALWAYS,
    FSYNC_INTERVAL,
    FSYNC_OFF,
    FSYNC_POLICIES,
    WAL_WIRE_VERSION,
    CrashInjector,
    SegmentedWAL,
    SimulatedCrash,
    decode_record,
    encode_record,
)

__all__ = [
    "DATA_DIR_ENV",
    "DEFAULT_DATA_DIR",
    "CrashInjector",
    "DurabilityManager",
    "FSYNC_ALWAYS",
    "FSYNC_INTERVAL",
    "FSYNC_OFF",
    "FSYNC_POLICIES",
    "RestoreReport",
    "SNAPSHOT_VERSION",
    "SegmentedWAL",
    "SimulatedCrash",
    "SnapshotStore",
    "WAL_WIRE_VERSION",
    "build_manifest",
    "decode_record",
    "encode_record",
    "flight_dir",
    "resolve_data_dir",
    "snapshot_dir",
    "wal_dir",
    "wire_payload",
]
