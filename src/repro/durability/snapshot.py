"""Snapshot files: the checkpoint half of the durability subsystem.

A snapshot is one JSON file capturing this process's durable state —
broker queues (pending + unacked + shed-deficit ledgers), version-store
counter maps, generations, dedup windows and engine rows — plus a
*manifest* pinning the WAL position it covers. Restore loads the latest
valid snapshot and replays only the WAL tail past the pin; segments
wholly below the pin (and older snapshot files) are reclaimed.

Files are written atomically (temp file + ``os.replace``) so a crash
mid-snapshot leaves the previous snapshot intact, and a half-written
file is skipped — never trusted — by :meth:`SnapshotStore.load_latest`.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import DurabilityError

#: On-disk snapshot schema version; loaders refuse *newer* snapshots
#: instead of misreading them.
SNAPSHOT_VERSION = 1

_PREFIX = "snap-"
_SUFFIX = ".json"


def _name(snapshot_id: int) -> str:
    return f"{_PREFIX}{snapshot_id:08d}{_SUFFIX}"


def _id_of(filename: str) -> Optional[int]:
    if not filename.startswith(_PREFIX) or not filename.endswith(_SUFFIX):
        return None
    body = filename[len(_PREFIX):-len(_SUFFIX)]
    return int(body) if body.isdigit() else None


def build_manifest(
    snapshot_id: int, pin: Tuple[int, int]
) -> Dict[str, Any]:
    """The golden manifest shape: the pinned WAL position tells restore
    where tail replay starts and compaction what it may reclaim."""
    return {
        "snapshot_version": SNAPSHOT_VERSION,
        "id": snapshot_id,
        "wal": {"segment": pin[0], "offset": pin[1]},
    }


class SnapshotStore:
    """Numbered snapshot files under one directory."""

    def __init__(self, dirpath: str, recorder: Optional[Any] = None) -> None:
        self.dir = dirpath
        self.recorder = recorder
        os.makedirs(dirpath, exist_ok=True)

    def ids(self) -> List[int]:
        out = []
        for filename in os.listdir(self.dir):
            sid = _id_of(filename)
            if sid is not None:
                out.append(sid)
        return sorted(out)

    def path(self, snapshot_id: int) -> str:
        return os.path.join(self.dir, _name(snapshot_id))

    def write(
        self, state: Dict[str, Any], pin: Tuple[int, int]
    ) -> Tuple[int, str]:
        """Atomically write ``state`` as the next snapshot; returns
        ``(snapshot_id, path)``. ``state`` must not already contain a
        ``manifest`` key."""
        if "manifest" in state:
            raise DurabilityError("snapshot state already has a manifest")
        existing = self.ids()
        snapshot_id = (existing[-1] + 1) if existing else 1
        payload = {"manifest": build_manifest(snapshot_id, pin)}
        payload.update(state)
        path = self.path(snapshot_id)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return snapshot_id, path

    def load_latest(self) -> Optional[Dict[str, Any]]:
        """The newest snapshot that parses and carries a supported
        version. Invalid files (a crash mid-write before the atomic
        rename cannot produce one, but disk corruption can) are skipped
        with a ``durability.snapshot_invalid`` anomaly, falling back to
        the next-older snapshot."""
        for snapshot_id in reversed(self.ids()):
            path = self.path(snapshot_id)
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    payload = json.load(fh)
                manifest = payload["manifest"]
                version = manifest.get("snapshot_version", 1)
                if version > SNAPSHOT_VERSION:
                    raise DurabilityError(
                        f"snapshot version {version} is newer than "
                        f"supported {SNAPSHOT_VERSION}"
                    )
                pin = manifest["wal"]
                if not isinstance(pin.get("segment"), int) \
                        or not isinstance(pin.get("offset"), int):
                    raise ValueError("manifest missing its WAL pin")
            except DurabilityError:
                raise
            except Exception as exc:
                if self.recorder is not None:
                    self.recorder.anomaly(
                        "durability.snapshot_invalid",
                        snapshot=snapshot_id,
                        error=str(exc),
                    )
                continue
            return payload
        return None

    def compact(self, keep_id: int) -> List[int]:
        """Delete snapshots older than ``keep_id``; returns their ids."""
        removed = []
        for snapshot_id in self.ids():
            if snapshot_id < keep_id:
                os.remove(self.path(snapshot_id))
                removed.append(snapshot_id)
        return removed
