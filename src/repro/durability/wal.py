"""The segmented write-ahead log.

Append-only JSON-lines segments: every line is one envelope
``{"v": WAL_WIRE_VERSION, "crc": <crc32>, "rec": {...}}`` whose CRC is
computed over the canonical JSON of ``rec`` alone — a flipped bit in a
record body, not just a torn line, is detected on replay. Segments
rotate at a fixed record count so snapshot compaction can reclaim whole
files below the snapshot's pin.

Three fsync policies model the real durability/throughput trade:

- ``off``: records reach the OS file immediately, no fsync — a process
  crash loses nothing (the kernel holds the bytes), a host crash may.
- ``always``: write + flush + fsync per record — nothing is ever lost,
  at per-record fsync cost.
- ``interval`` (group commit): records accumulate in an in-memory
  buffer and hit the file in one write + fsync per sync point (every
  ``group_max`` records, or an explicit :meth:`sync`). A crash between
  sync points genuinely loses the buffered tail — exactly the window
  the ``before-fsync`` crash scenario exercises.

Replay verifies version and CRC per record. A malformed *final* record
of the *final* segment is a torn tail — the partial line is truncated
off the file and a ``durability.torn_tail`` anomaly is emitted — while
corruption anywhere else (or a record from a newer ``WAL_WIRE_VERSION``)
raises :class:`~repro.errors.WALCorrupt`: the log cannot be trusted and
the caller must fall back to bootstrap/repair.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import DurabilityError, WALCorrupt

#: On-disk WAL schema version. Bump when a record changes meaning;
#: replay refuses records from a *newer* schema instead of misreading.
WAL_WIRE_VERSION = 1

FSYNC_OFF = "off"
FSYNC_INTERVAL = "interval"
FSYNC_ALWAYS = "always"
FSYNC_POLICIES = (FSYNC_OFF, FSYNC_INTERVAL, FSYNC_ALWAYS)

#: Records per segment before rotation (small enough that compaction
#: has segments to reclaim in tests and demos).
DEFAULT_SEGMENT_RECORDS = 512
#: Group-commit buffer bound for the ``interval`` policy.
DEFAULT_GROUP_MAX = 64

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".jsonl"


class SimulatedCrash(DurabilityError):
    """Raised by a :class:`CrashInjector` at its armed crash point."""


class CrashInjector:
    """Deterministic crash-point injection for recovery tests.

    ``point`` is one of ``after-append`` / ``before-fsync`` /
    ``before-ack``; the crash fires on the ``after_records``-th time
    that point is reached. ``hard=True`` kills the whole process with
    SIGKILL (a genuine, uncatchable death for cross-process tests);
    the default raises :class:`SimulatedCrash` for in-process restores.
    """

    POINTS = ("after-append", "before-fsync", "before-ack")

    def __init__(self, point: str, after_records: int = 1, hard: bool = False):
        if point not in self.POINTS:
            raise DurabilityError(f"unknown crash point {point!r}")
        self.point = point
        self.remaining = after_records
        self.hard = hard
        self.fired = False

    def fire(self, point: str) -> None:
        if self.fired or point != self.point:
            return
        self.remaining -= 1
        if self.remaining > 0:
            return
        self.fired = True
        if self.hard:  # pragma: no cover - exercised via subprocesses
            import signal

            os.kill(os.getpid(), signal.SIGKILL)
        raise SimulatedCrash(f"injected crash at {point}")


def canonical_record(rec: Dict[str, Any]) -> str:
    """The CRC input: sorted keys, no whitespace — both writer and
    replayer derive the same bytes for the same record."""
    return json.dumps(rec, sort_keys=True, separators=(",", ":"))


def record_crc(rec: Dict[str, Any]) -> int:
    return zlib.crc32(canonical_record(rec).encode("utf-8")) & 0xFFFFFFFF


def encode_record(rec: Dict[str, Any]) -> str:
    """One WAL line (without the newline)."""
    envelope = {"v": WAL_WIRE_VERSION, "crc": record_crc(rec), "rec": rec}
    return json.dumps(envelope, sort_keys=True, separators=(",", ":"))


def decode_record(line: str) -> Dict[str, Any]:
    """Parse and verify one WAL line; raises :class:`WALCorrupt` on a
    malformed line, a CRC mismatch, or a newer wire version."""
    try:
        envelope = json.loads(line)
    except ValueError as exc:
        raise WALCorrupt(f"unparseable WAL line: {exc}") from None
    if not isinstance(envelope, dict) or "rec" not in envelope:
        raise WALCorrupt("WAL line is not a record envelope")
    version = envelope.get("v", 1)
    if version > WAL_WIRE_VERSION:
        raise WALCorrupt(
            f"WAL wire version {version} is newer than supported "
            f"{WAL_WIRE_VERSION}; upgrade before replaying this log"
        )
    rec = envelope["rec"]
    if envelope.get("crc") != record_crc(rec):
        raise WALCorrupt("WAL record failed its CRC check")
    return rec


def _segment_name(segment_id: int) -> str:
    return f"{_SEGMENT_PREFIX}{segment_id:08d}{_SEGMENT_SUFFIX}"


def _segment_id(filename: str) -> Optional[int]:
    if not filename.startswith(_SEGMENT_PREFIX) or \
            not filename.endswith(_SEGMENT_SUFFIX):
        return None
    body = filename[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
    return int(body) if body.isdigit() else None


class SegmentedWAL:
    """Append-only segmented log under one directory.

    A *position* is ``(segment_id, record_offset)``: replay from a
    position starts at record ``record_offset`` of that segment (0 =
    its first record) and runs to the end of the log. Thread-safe:
    appends serialize on an internal lock (callers already hold their
    own queue locks; this lock only orders writers against each other).
    """

    def __init__(
        self,
        dirpath: str,
        fsync: str = FSYNC_OFF,
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
        group_max: int = DEFAULT_GROUP_MAX,
        metrics: Optional[Any] = None,
        recorder: Optional[Any] = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise DurabilityError(
                f"unknown fsync policy {fsync!r}; options: {FSYNC_POLICIES}"
            )
        self.dir = dirpath
        self.fsync = fsync
        self.segment_records = max(1, segment_records)
        self.group_max = max(1, group_max)
        self.recorder = recorder
        self.injector: Optional[CrashInjector] = None
        self._lock = threading.Lock()
        self._fh = None
        self._buffer: List[str] = []  # group-commit tail (interval policy)
        os.makedirs(dirpath, exist_ok=True)
        self._appends = metrics.counter("durability.wal.appends") \
            if metrics is not None else None
        self._fsyncs = metrics.counter("durability.wal.fsyncs") \
            if metrics is not None else None
        self._segments_gauge = metrics.gauge("durability.wal.segments") \
            if metrics is not None else None
        self._bytes_gauge = metrics.gauge("durability.wal.bytes") \
            if metrics is not None else None
        existing = self.segment_ids()
        if existing:
            self._segment = existing[-1]
            self._segment_count = self._count_records(existing[-1])
        else:
            self._segment = 1
            self._segment_count = 0
        self._total_bytes = 0
        self._update_gauges()

    # -- segment bookkeeping -------------------------------------------------

    def segment_ids(self) -> List[int]:
        ids = []
        for name in os.listdir(self.dir):
            sid = _segment_id(name)
            if sid is not None:
                ids.append(sid)
        return sorted(ids)

    def segment_path(self, segment_id: int) -> str:
        return os.path.join(self.dir, _segment_name(segment_id))

    def _count_records(self, segment_id: int) -> int:
        path = self.segment_path(segment_id)
        if not os.path.exists(path):
            return 0
        with open(path, "r", encoding="utf-8") as fh:
            return sum(1 for line in fh if line.strip())

    def _update_gauges(self) -> None:
        """Full recompute from the filesystem (init, rotation, torn-tail
        truncation, compaction); appends keep the byte gauge fresh
        incrementally instead of paying a listdir per record."""
        if self._segments_gauge is None:
            return
        ids = self.segment_ids()
        self._segments_gauge.set(len(ids))
        total = sum(
            os.path.getsize(self.segment_path(sid))
            for sid in ids
            if os.path.exists(self.segment_path(sid))
        )
        self._total_bytes = total
        self._bytes_gauge.set(total)

    def _track_written(self, byte_count: int) -> None:
        if self._bytes_gauge is not None:
            self._total_bytes += byte_count
            self._bytes_gauge.set(self._total_bytes)

    def _handle(self):
        if self._fh is None:
            created = not os.path.exists(self.segment_path(self._segment))
            self._fh = open(
                self.segment_path(self._segment), "a", encoding="utf-8"
            )
            if created and self._segments_gauge is not None:
                self._segments_gauge.set(len(self.segment_ids()))
        return self._fh

    def _rotate_locked(self) -> None:
        self._flush_buffer_locked(do_fsync=self.fsync != FSYNC_OFF)
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self._segment += 1
        self._segment_count = 0
        self._update_gauges()

    # -- appending -----------------------------------------------------------

    def append(self, rec: Dict[str, Any]) -> Tuple[int, int]:
        """Durably append one record; returns its position."""
        line = encode_record(rec)
        with self._lock:
            if self._segment_count >= self.segment_records:
                self._rotate_locked()
            position = (self._segment, self._segment_count)
            self._segment_count += 1
            if self._appends is not None:
                self._appends.increment()
            if self.fsync == FSYNC_INTERVAL:
                self._buffer.append(line)
                if len(self._buffer) >= self.group_max:
                    if self.injector is not None:
                        self.injector.fire("before-fsync")
                    self._flush_buffer_locked(do_fsync=True)
            else:
                fh = self._handle()
                fh.write(line + "\n")
                fh.flush()
                self._track_written(len(line.encode("utf-8")) + 1)
                if self.fsync == FSYNC_ALWAYS:
                    os.fsync(fh.fileno())
                    if self._fsyncs is not None:
                        self._fsyncs.increment()
        if self.injector is not None:
            self.injector.fire("after-append")
        return position

    def _flush_buffer_locked(self, do_fsync: bool) -> None:
        if not self._buffer:
            return
        fh = self._handle()
        fh.write("\n".join(self._buffer) + "\n")
        fh.flush()
        self._track_written(
            sum(len(line.encode("utf-8")) + 1 for line in self._buffer)
        )
        if do_fsync:
            os.fsync(fh.fileno())
            if self._fsyncs is not None:
                self._fsyncs.increment()
        self._buffer.clear()

    def sync(self) -> None:
        """Force the group-commit buffer (and the OS cache) to disk —
        the write barrier snapshots take before pinning a position."""
        with self._lock:
            if self.injector is not None and self._buffer:
                self.injector.fire("before-fsync")
            self._flush_buffer_locked(do_fsync=True)
            if self._fh is not None and self.fsync != FSYNC_ALWAYS:
                os.fsync(self._fh.fileno())
                if self._fsyncs is not None:
                    self._fsyncs.increment()
        self._update_gauges()

    def position(self) -> Tuple[int, int]:
        """The position one past the last appended record: replaying
        from here sees only records appended afterwards."""
        with self._lock:
            return (self._segment, self._segment_count)

    def close(self) -> None:
        with self._lock:
            self._flush_buffer_locked(do_fsync=self.fsync != FSYNC_OFF)
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def drop_buffered_tail(self) -> int:
        """Simulate the group-commit loss window: discard records that
        were appended but never synced (crash tests only)."""
        with self._lock:
            lost = len(self._buffer)
            self._buffer.clear()
            self._segment_count -= lost
            return lost

    # -- replay --------------------------------------------------------------

    def replay(
        self, start: Optional[Tuple[int, int]] = None
    ) -> Iterator[Tuple[Tuple[int, int], Dict[str, Any]]]:
        """Yield ``(position, record)`` from ``start`` (default: the
        oldest segment) to the end of the log, verifying every record.

        A malformed final record of the final segment is treated as a
        torn tail: the file is truncated back to the last good record,
        a ``durability.torn_tail`` anomaly is emitted, and iteration
        ends. Malformed records anywhere else raise
        :class:`~repro.errors.WALCorrupt`.
        """
        self.close()
        ids = self.segment_ids()
        if start is not None:
            ids = [sid for sid in ids if sid >= start[0]]
            if ids and start[0] not in ids and any(s < start[0] for s in self.segment_ids()):
                raise WALCorrupt(
                    f"replay start segment {start[0]} is missing"
                )
        for index, sid in enumerate(ids):
            last_segment = index == len(ids) - 1
            skip = start[1] if (start is not None and sid == start[0]) else 0
            path = self.segment_path(sid)
            with open(path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
            good_bytes = 0
            for line_no, raw in enumerate(lines):
                stripped = raw.strip()
                if not stripped:
                    good_bytes += len(raw.encode("utf-8"))
                    continue
                try:
                    rec = decode_record(stripped)
                except WALCorrupt:
                    tail = line_no == len(lines) - 1
                    if last_segment and tail:
                        self._truncate_torn(path, sid, good_bytes, line_no)
                        return
                    raise
                good_bytes += len(raw.encode("utf-8"))
                if line_no >= skip:
                    yield (sid, line_no), rec

    def _truncate_torn(
        self, path: str, segment_id: int, good_bytes: int, line_no: int
    ) -> None:
        with open(path, "r+b") as fh:
            fh.truncate(good_bytes)
        with self._lock:
            if segment_id == self._segment:
                self._segment_count = line_no
        if self.recorder is not None:
            self.recorder.anomaly(
                "durability.torn_tail",
                segment=segment_id,
                record=line_no,
                truncated_at=good_bytes,
            )
        self._update_gauges()

    # -- compaction ----------------------------------------------------------

    def compact_below(self, segment_id: int) -> List[int]:
        """Delete segments wholly covered by a snapshot pinned inside
        ``segment_id`` (everything strictly below it); returns the
        reclaimed segment ids."""
        reclaimed = []
        for sid in self.segment_ids():
            if sid < segment_id:
                os.remove(self.segment_path(sid))
                reclaimed.append(sid)
        self._update_gauges()
        return reclaimed
