"""Exception hierarchy shared across the repro packages.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch a single base class at service boundaries while tests can assert on
precise failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# --------------------------------------------------------------------------
# Database engine errors
# --------------------------------------------------------------------------

class DatabaseError(ReproError):
    """Base class for storage-engine failures."""


class SchemaError(DatabaseError):
    """A table/collection/index definition is invalid or missing."""


class UnknownTableError(SchemaError):
    """Operation referenced a table that does not exist."""


class UnknownColumnError(SchemaError):
    """Operation referenced a column that does not exist."""


class DuplicateKeyError(DatabaseError):
    """A uniqueness constraint (primary key / unique index) was violated."""


class TypeMismatchError(DatabaseError):
    """A value does not conform to the declared column type."""


class TransactionError(DatabaseError):
    """Transaction lifecycle misuse (double commit, write outside txn, ...)."""


class UnsupportedOperationError(DatabaseError):
    """The engine does not support the requested operation."""


class FaultInjected(DatabaseError):
    """Raised by fault-injection hooks to simulate component failure."""


# --------------------------------------------------------------------------
# ORM errors
# --------------------------------------------------------------------------

class ORMError(ReproError):
    """Base class for ORM-layer failures."""


class RecordNotFound(ORMError):
    """``find`` could not locate a record by primary key."""


class ValidationError(ORMError):
    """A model-level validation rejected the record."""


class ReadOnlyAttributeError(ORMError):
    """Attempted write to an attribute owned by another service."""


# --------------------------------------------------------------------------
# Broker errors
# --------------------------------------------------------------------------

class BrokerError(ReproError):
    """Base class for message-broker failures."""


class QueueDecommissioned(BrokerError):
    """The subscriber queue exceeded its limit and was killed (§4.4)."""


class MessageLost(BrokerError):
    """Fault injection dropped a message in transit (§6.5)."""


# --------------------------------------------------------------------------
# Synapse core errors
# --------------------------------------------------------------------------

class SynapseError(ReproError):
    """Base class for Synapse publish/subscribe failures."""


class PublicationError(SynapseError):
    """Invalid publisher declaration or publish-time failure."""


class SubscriptionError(SynapseError):
    """Invalid subscriber declaration (e.g. unpublished attribute, §4.5)."""


class DecoratorViolation(SynapseError):
    """A decorator broke one of its three restrictions (§3.1)."""


class DeliveryModeError(SynapseError):
    """Subscriber requested stronger semantics than its publisher offers."""


class DependencyDeadlock(SynapseError):
    """A subscriber waited past its timeout for a missing dependency."""


class MigrationError(SynapseError):
    """A live schema migration rule of §4.3 was violated."""


class CdcError(SynapseError):
    """CDC / transactional-outbox failure: a malformed or newer-versioned
    outbox row, a raw write on an unbound model, or a poller misuse."""


# --------------------------------------------------------------------------
# Durability errors
# --------------------------------------------------------------------------

class DurabilityError(SynapseError):
    """Base class for WAL / snapshot / restore failures."""


class WALCorrupt(DurabilityError):
    """The write-ahead log cannot be trusted: a mid-log record failed
    its CRC, a segment is missing, or a record uses a newer wire
    version. Restore must fall back to snapshot-only state and re-enter
    bootstrap/repair."""


# --------------------------------------------------------------------------
# Control-plane transport errors
# --------------------------------------------------------------------------

class TransportError(SynapseError):
    """A control-plane request could not be transported to its peer."""


class TransportTimeout(TransportError):
    """A control-plane request got no reply within its deadline."""


class TransportSerializationError(TransportError):
    """A control-plane envelope (or its result) is not JSON-serializable —
    nothing non-wire-format may cross the service boundary."""


class ControlPlaneError(SynapseError):
    """The peer answered a control-plane request with a structured error.

    ``error_type`` carries the remote exception class name (or one of the
    transport-level codes ``UnknownService`` / ``UnknownOperation``).
    """

    def __init__(self, message: str, error_type: str = "",
                 service: str = "", op: str = "") -> None:
        super().__init__(message)
        self.error_type = error_type
        self.service = service
        self.op = op
