"""repro — a Python reproduction of Synapse (EuroSys 2015).

Public surface::

    from repro import Ecosystem, Model, Field

    eco = Ecosystem()
    pub = eco.service("pub1", database=...)

    @pub.model(publish=["name"])
    class User(Model):
        name = Field(str)

See README.md for the full tour and DESIGN.md for the paper mapping.
"""

from repro.core import CAUSAL, GLOBAL, WEAK, Ecosystem, Service
from repro.orm import (
    BelongsTo,
    Field,
    HasMany,
    Model,
    VirtualField,
    after_create,
    after_destroy,
    after_save,
    after_update,
    before_create,
    before_destroy,
    before_save,
    before_update,
)

__version__ = "1.0.0"

__all__ = [
    "Ecosystem",
    "Service",
    "GLOBAL",
    "CAUSAL",
    "WEAK",
    "Model",
    "Field",
    "VirtualField",
    "BelongsTo",
    "HasMany",
    "before_create",
    "after_create",
    "before_update",
    "after_update",
    "before_destroy",
    "after_destroy",
    "before_save",
    "after_save",
    "__version__",
]
